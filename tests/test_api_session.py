"""Tests for the v1 API surface: Simulation sessions, deployers, events."""

import numpy as np
import pytest

from repro.api import (
    DEPLOYERS,
    CentralizedDeployer,
    ConvergenceProbe,
    CoverageProbe,
    Deployer,
    DistributedDeployer,
    EnergyProbe,
    RoundEvent,
    Simulation,
    StaticDeployer,
    deploy,
)
from repro.core.config import LaacadConfig
from repro.network.network import SensorNetwork
from repro.runtime.failures import FailureInjector
from repro.scenarios import make_scenario


def _network(square, n=12, seed=3, comm_range=0.3):
    return SensorNetwork.from_corner_cluster(
        square, n, comm_range=comm_range, rng=np.random.default_rng(seed)
    )


class TestConstruction:
    def test_from_network_and_config(self, square, fast_config):
        sim = Simulation(network=_network(square), config=fast_config)
        assert isinstance(sim.deployer, CentralizedDeployer)
        assert sim.config is fast_config

    def test_from_spec_selects_deployer_by_pipeline(self):
        assert isinstance(
            Simulation.from_spec(make_scenario("open_field", node_count=8)).deployer,
            CentralizedDeployer,
        )
        assert isinstance(
            Simulation.from_spec(
                make_scenario("node_failures", node_count=8, k=2)
            ).deployer,
            DistributedDeployer,
        )
        assert isinstance(
            Simulation.from_spec(
                make_scenario("static_blueprint", node_count=6, k=1)
            ).deployer,
            StaticDeployer,
        )

    def test_from_kwargs_builds_a_scenario(self):
        sim = Simulation(node_count=8, k=1, max_rounds=5, seed=4)
        assert sim.spec is not None
        assert sim.spec.node_count == 8
        result = sim.run()
        assert result.rounds_executed >= 1

    def test_kwargs_form_routes_shared_keywords_into_the_spec(self):
        sim = Simulation(node_count=8, k=1, comm_range=0.1, max_rounds=4)
        assert sim.spec.comm_range == 0.1
        assert sim.network.comm_range == 0.1
        dist = Simulation(
            node_count=8, k=1, kind="distributed", drop_probability=0.5, max_rounds=4
        )
        assert dist.spec.drop_probability == 0.5
        assert dist.deployer.scheduler.drop_probability == 0.5
        slow = Simulation(
            node_count=8, k=1, max_rounds=4, mobility={"max_step": 0.05}
        )
        assert slow.deployer.mobility.max_step == 0.05

    def test_conflicting_keywords_rejected_loudly(self, square, fast_config):
        net = _network(square)
        with pytest.raises(TypeError, match="comm_range"):
            Simulation(network=net, config=fast_config, comm_range=0.1)
        with pytest.raises(TypeError, match="unexpected keyword"):
            Simulation(network=net, config=fast_config, node_count=9)
        with pytest.raises(TypeError, match="unexpected keyword"):
            Simulation(make_scenario("open_field", node_count=8), node_count=9)
        with pytest.raises(TypeError, match="failure_injector"):
            Simulation(node_count=8, k=1, failure_injector=FailureInjector())

    def test_from_region_and_positions(self, square):
        result = Simulation(
            region=square,
            positions=[(0.2, 0.2), (0.8, 0.8)],
            config=LaacadConfig(k=1, max_rounds=5),
        ).run()
        assert len(result.final_positions) == 2

    def test_non_deployment_pipeline_rejected(self):
        with pytest.raises(ValueError, match="not a deployment"):
            Simulation.from_spec(make_scenario("voronoi_partition", node_count=8))

    def test_unknown_kind_rejected(self, square, fast_config):
        with pytest.raises(ValueError, match="unknown deployer kind"):
            Simulation(network=_network(square), config=fast_config, kind="teleport")

    def test_insufficient_nodes_rejected(self, square):
        net = SensorNetwork(square, [(0.5, 0.5)], comm_range=0.3)
        with pytest.raises(ValueError):
            Simulation(network=net, config=LaacadConfig(k=2))

    def test_deployer_registry(self):
        assert set(DEPLOYERS) == {"laacad", "distributed", "static"}
        for cls in DEPLOYERS.values():
            assert issubclass(cls, Deployer)


class TestStepping:
    def test_stepping_equals_monolithic_run(self, square, fast_config):
        monolithic = Simulation(network=_network(square), config=fast_config).run()
        sim = Simulation(network=_network(square), config=fast_config)
        events = []
        while not sim.done:
            events.append(sim.step())
        stepped = sim.result()
        assert stepped.final_positions == monolithic.final_positions
        assert stepped.sensing_ranges == monolithic.sensing_ranges
        assert stepped.history == monolithic.history
        assert len(events) == stepped.rounds_executed
        assert all(isinstance(e, RoundEvent) for e in events)
        assert [e.round_index for e in events] == list(range(len(events)))
        assert events[-1].converged == stepped.converged

    def test_run_until_then_continue_is_identical(self, square, fast_config):
        uninterrupted = Simulation(network=_network(square), config=fast_config).run()
        sim = Simulation(network=_network(square), config=fast_config)
        partial = sim.run(until=4)
        assert partial.rounds_executed == 4
        resumed = sim.run()
        assert resumed.final_positions == uninterrupted.final_positions
        assert resumed.sensing_ranges == uninterrupted.sensing_ranges
        assert resumed.history == uninterrupted.history

    def test_distributed_run_until_then_continue_is_identical(self, square):
        config = LaacadConfig(k=1, epsilon=3e-3, max_rounds=15)

        def session():
            return Simulation(
                network=SensorNetwork.from_random(
                    square, 9, comm_range=0.4, rng=np.random.default_rng(6)
                ),
                config=config,
                kind="distributed",
                drop_probability=0.05,
            )

        uninterrupted = session().run()
        sim = session()
        sim.run(until=4)  # mid-run finalize must not perturb the RNG stream
        resumed = sim.run()
        assert resumed.final_positions == uninterrupted.final_positions
        assert resumed.sensing_ranges == uninterrupted.sensing_ranges
        assert resumed.communication == uninterrupted.communication
        assert resumed.history == uninterrupted.history

    def test_step_after_done_raises(self, square):
        sim = Simulation(
            network=_network(square, n=6),
            config=LaacadConfig(k=1, max_rounds=2),
        )
        sim.run()
        with pytest.raises(RuntimeError, match="complete"):
            sim.step()

    def test_events_iterator_stops_at_until(self, square, fast_config):
        sim = Simulation(network=_network(square), config=fast_config)
        seen = [e.round_index for e in sim.events(until=3)]
        assert seen == [0, 1, 2]
        assert not sim.done

    def test_state_progression(self, square, fast_config):
        sim = Simulation(network=_network(square), config=fast_config)
        state0 = sim.state
        assert state0.rounds_executed == 0 and not state0.done
        sim.step()
        state1 = sim.state
        assert state1.rounds_executed == 1
        assert state1.kind == "laacad"
        assert len(state1.positions) == len(sim.network.nodes)

    def test_expose_regions(self, square):
        sim = Simulation(
            network=_network(square, n=6),
            config=LaacadConfig(k=1, max_rounds=2),
            expose_regions=True,
        )
        event = sim.step()
        assert event.regions is not None and len(event.regions) == 6

    def test_mutates_network_in_place(self, square, fast_config):
        net = _network(square)
        initial = list(net.positions())
        result = Simulation(network=net, config=fast_config).run()
        assert net.positions() == result.final_positions
        assert net.positions() != initial
        assert net.sensing_ranges() == result.sensing_ranges


class TestObservers:
    def test_observers_receive_every_round(self, square, fast_config):
        sim = Simulation(network=_network(square), config=fast_config)
        seen = []
        sim.add_observer(lambda e: seen.append(e.round_index))
        result = sim.run()
        assert seen == list(range(result.rounds_executed))

    def test_remove_observer(self, square, fast_config):
        sim = Simulation(network=_network(square), config=fast_config)
        seen = []
        observer = sim.add_observer(lambda e: seen.append(e))
        sim.step()
        sim.remove_observer(observer)
        sim.step()
        assert len(seen) == 1

    def test_convergence_probe(self, square, fast_config):
        sim = Simulation(network=_network(square), config=fast_config)
        probe = ConvergenceProbe()
        sim.add_observer(probe)
        result = sim.run()
        assert probe.rounds == result.rounds_executed
        assert probe.max_circumradii == result.max_circumradius_trace()
        if result.converged:
            assert probe.converged_at == result.rounds_executed - 1

    def test_energy_probe_sampling(self, square, fast_config):
        sim = Simulation(network=_network(square), config=fast_config)
        probe = EnergyProbe(every=3)
        sim.add_observer(probe)
        sim.run()
        assert probe.rounds
        assert all(r % 3 == 0 for r in probe.rounds[:-1])
        assert all(load > 0 for load in probe.max_loads)

    def test_raising_observer_is_logged_and_detached(self, square, fast_config, caplog):
        # An observer that raises must not corrupt the session or kill
        # the event stream: the round's effects stand, the bad observer
        # is detached, and the healthy observers keep receiving events.
        import logging

        sim = Simulation(network=_network(square), config=fast_config)
        healthy = []
        calls = []

        def bad(event):
            calls.append(event.round_index)
            raise RuntimeError("observer bug")

        sim.add_observer(bad)
        sim.add_observer(lambda e: healthy.append(e.round_index))
        with caplog.at_level(logging.ERROR, logger="repro.api.session"):
            event = sim.step()
        assert event.round_index == 0
        assert calls == [0]
        assert any("detaching" in rec.message for rec in caplog.records)
        assert bad not in sim._observers

        sim.step()
        assert calls == [0], "detached observer must not be called again"
        assert healthy == [0, 1], "healthy observers keep the stream"
        assert sim.state.rounds_executed == 2

    def test_raising_observer_matches_clean_run(self, square, fast_config):
        clean = Simulation(network=_network(square), config=fast_config).run()

        sim = Simulation(network=_network(square), config=fast_config)

        def bad(event):
            raise ValueError("boom")

        sim.add_observer(bad)
        result = sim.run()
        assert result.final_positions == clean.final_positions
        assert result.history == clean.history

    def test_idle_since_advances_on_step_and_touch(self, square, fast_config):
        import time

        sim = Simulation(network=_network(square), config=fast_config)
        created = sim.idle_since
        assert created <= time.monotonic()
        sim.step()
        after_step = sim.idle_since
        assert after_step >= created
        sim.touch()
        assert sim.idle_since >= after_step

    def test_checkpoint_nbytes_matches_serialized_size(self, square, fast_config):
        import json

        sim = Simulation(network=_network(square), config=fast_config)
        sim.step()
        ckpt = sim.checkpoint()
        assert ckpt.nbytes == len(json.dumps(ckpt.payload).encode("utf-8"))

    def test_checkpoint_nbytes_matches_saved_file(self, square, fast_config, tmp_path):
        sim = Simulation(network=_network(square), config=fast_config)
        sim.step()
        ckpt = sim.checkpoint()
        path = ckpt.save(tmp_path / "s.ckpt.json")
        assert ckpt.nbytes == path.stat().st_size

    def test_coverage_probe(self, square):
        sim = Simulation(
            network=_network(square, n=10),
            config=LaacadConfig(k=1, epsilon=2e-3, max_rounds=30),
        )
        probe = CoverageProbe(square, k=1, resolution=25, every=10)
        sim.add_observer(probe)
        sim.run()
        assert probe.fractions
        # Coverage of the final (converged) deployment must be complete.
        assert probe.fractions[-1] == pytest.approx(1.0, abs=1e-9)


class TestStaticSession:
    def test_static_matches_pipeline_contract(self):
        spec = make_scenario("static_blueprint", node_count=6, k=1)
        result = Simulation.from_spec(spec).run()
        assert result.kind == "static"
        assert result.converged and result.rounds_executed == 0
        assert result.history == []
        assert result.initial_positions == result.final_positions
        assert all(r > 0 for r in result.sensing_ranges)

    def test_static_single_step_completes(self):
        spec = make_scenario("static_blueprint", node_count=5, k=1)
        sim = Simulation.from_spec(spec)
        event = sim.step()
        assert event.done and sim.done


class TestDeployFunction:
    def test_deploy_matches_session(self, square):
        positions = square.random_points(8, rng=np.random.default_rng(1))
        config = LaacadConfig(k=1, max_rounds=20)
        a = deploy(square, positions, config)
        b = Simulation(
            region=square, positions=positions, config=config, comm_range=0.25
        ).run()
        assert a.final_positions == b.final_positions
        assert a.initial_positions == positions


class TestDistributedSession:
    def test_failures_and_communication_reported(self, square):
        net = SensorNetwork.from_random(
            square, 12, comm_range=0.4, rng=np.random.default_rng(3)
        )
        result = Simulation(
            network=net,
            config=LaacadConfig(k=1, epsilon=2e-3, max_rounds=20),
            kind="distributed",
            failure_injector=FailureInjector(scheduled={3: [0, 1]}),
        ).run()
        assert result.kind == "distributed"
        assert result.killed_nodes == [0, 1]
        assert result.communication.messages > 0
        assert result.sensing_ranges[0] == 0.0 and result.sensing_ranges[1] == 0.0
