"""Unit tests for the baseline deployments and comparison formulas."""

import math

import numpy as np
import pytest

from repro.analysis.coverage import coverage_fraction, is_k_covered
from repro.baselines.ammari import ammari_lens_deployment, ammari_node_count, lens_area
from repro.baselines.bai import bai_minimum_nodes, bai_optimal_density, bai_strip_deployment
from repro.baselines.lattice import (
    hexagonal_lattice,
    lattice_for_count,
    square_lattice,
    triangular_lattice,
)
from repro.baselines.minimax1 import MinimaxVoronoiMover
from repro.baselines.random_deploy import corner_deployment, random_deployment
from repro.regions.shapes import unit_square


class TestRandomDeployments:
    def test_random_deployment_inside(self, square, rng):
        pts = random_deployment(square, 30, rng=rng)
        assert len(pts) == 30
        assert all(square.contains(p) for p in pts)

    def test_random_deployment_validation(self, square):
        with pytest.raises(ValueError):
            random_deployment(square, 0)

    def test_corner_deployment_clustered(self, square):
        pts = corner_deployment(square, 25, cluster_fraction=0.1, rng=np.random.default_rng(0))
        assert all(x <= 0.1 and y <= 0.1 for x, y in pts)

    def test_corner_deployment_validation(self, square):
        with pytest.raises(ValueError):
            corner_deployment(square, 10, cluster_fraction=2.0)


class TestLattices:
    def test_square_lattice_count(self, square):
        pts = square_lattice(square, 0.25)
        assert len(pts) == 16
        assert all(square.contains(p) for p in pts)

    def test_triangular_lattice_inside(self, square):
        pts = triangular_lattice(square, 0.2)
        assert pts and all(square.contains(p) for p in pts)

    def test_hexagonal_lattice_inside(self, square):
        pts = hexagonal_lattice(square, 0.15)
        assert pts and all(square.contains(p) for p in pts)

    def test_spacing_validation(self, square):
        for builder in (square_lattice, triangular_lattice, hexagonal_lattice):
            with pytest.raises(ValueError):
                builder(square, 0.0)

    def test_lattice_for_count_close(self, square):
        pts = lattice_for_count(square, 50, kind="triangular")
        assert abs(len(pts) - 50) <= 5

    def test_lattice_for_count_validation(self, square):
        with pytest.raises(ValueError):
            lattice_for_count(square, 10, kind="unknown")
        with pytest.raises(ValueError):
            lattice_for_count(square, 0)

    def test_triangular_lattice_gives_1_coverage(self, square):
        spacing = 0.2
        pts = triangular_lattice(square, spacing)
        # radius = spacing / sqrt(3) covers the plane for an infinite
        # lattice; boundary effects require a slightly larger radius here.
        ranges = [spacing] * len(pts)
        assert coverage_fraction(pts, ranges, square, 1, resolution=40) > 0.99


class TestBaiBaseline:
    def test_optimal_density_value(self):
        assert bai_optimal_density() == pytest.approx(4 * math.pi / (3 * math.sqrt(3)))

    def test_minimum_nodes_formula(self):
        # N* = 4 |A| / (3 sqrt(3) r^2) for |A| = 1, r = 0.05 -> ~3079
        assert bai_minimum_nodes(1.0, 0.05) == math.ceil(4 / (3 * math.sqrt(3) * 0.0025))

    def test_minimum_nodes_validation(self):
        with pytest.raises(ValueError):
            bai_minimum_nodes(0.0, 0.1)
        with pytest.raises(ValueError):
            bai_minimum_nodes(1.0, 0.0)

    def test_strip_deployment_2_covers(self, square):
        r = 0.25
        pts = bai_strip_deployment(square, r)
        assert is_k_covered(pts, [r] * len(pts), square, 2, resolution=40)

    def test_strip_deployment_validation(self, square):
        with pytest.raises(ValueError):
            bai_strip_deployment(square, 0.0)


class TestAmmariBaseline:
    def test_node_count_formula(self):
        expected = math.ceil(6 * 3 * 1.0 / ((4 * math.pi - 3 * math.sqrt(3)) * 0.01))
        assert ammari_node_count(1.0, 0.1, 3) == expected

    def test_node_count_validation(self):
        with pytest.raises(ValueError):
            ammari_node_count(1.0, 0.1, 2)
        with pytest.raises(ValueError):
            ammari_node_count(1.0, 0.0, 3)

    def test_lens_area_positive(self):
        assert lens_area(0.1) > 0
        with pytest.raises(ValueError):
            lens_area(0.0)

    def test_lens_deployment_k_covers(self, square):
        r = 0.3
        k = 3
        pts = ammari_lens_deployment(square, r, k)
        assert is_k_covered(pts, [r] * len(pts), square, k, resolution=35)

    def test_lens_deployment_needs_more_nodes_than_laacad_balanced(self, square):
        # The lens construction is intentionally redundant: it uses far
        # more nodes than k |A| / (pi r^2), which is what LAACAD approaches.
        r, k = 0.3, 3
        pts = ammari_lens_deployment(square, r, k)
        balanced = k * square.area / (math.pi * r * r)
        assert len(pts) > balanced


class TestMinimaxMover:
    def test_validation(self, square):
        with pytest.raises(ValueError):
            MinimaxVoronoiMover(square, alpha=0.0)
        with pytest.raises(ValueError):
            MinimaxVoronoiMover(square, epsilon=0.0)
        with pytest.raises(ValueError):
            MinimaxVoronoiMover(square, max_rounds=0)
        with pytest.raises(ValueError):
            MinimaxVoronoiMover(square).run([])

    def test_produces_1_coverage(self, square):
        rng = np.random.default_rng(2)
        positions = square.random_points(12, rng=rng)
        mover = MinimaxVoronoiMover(square, alpha=1.0, epsilon=2e-3, max_rounds=60)
        result = mover.run(positions)
        assert is_k_covered(
            result.final_positions, result.sensing_ranges, square, 1, resolution=40
        )
        assert result.max_sensing_range > 0

    def test_matches_laacad_k1(self, square):
        # The two movers implement the same fixed-point iteration but make
        # slightly different micro-decisions (LAACAD freezes nodes whose
        # displacement is already below epsilon), so they can land in
        # nearby — not bitwise-identical — local minima.  The comparison
        # therefore checks that the achieved objective values are close.
        from repro.core.config import LaacadConfig
        from repro.api import deploy

        rng = np.random.default_rng(3)
        positions = square.random_points(10, rng=rng)
        minimax = MinimaxVoronoiMover(square, alpha=1.0, epsilon=2e-3, max_rounds=60).run(positions)
        laacad = deploy(square, positions, LaacadConfig(k=1, epsilon=2e-3, max_rounds=60))
        assert minimax.max_sensing_range == pytest.approx(laacad.max_sensing_range, rel=0.05)

    def test_max_range_trace_monotone(self, square):
        rng = np.random.default_rng(4)
        positions = square.random_points(10, rng=rng)
        result = MinimaxVoronoiMover(square, alpha=1.0, max_rounds=40).run(positions)
        from repro.analysis.traces import is_monotone_nonincreasing

        assert is_monotone_nonincreasing(result.max_range_trace, tolerance=1e-6)
