"""Unit tests for LaacadConfig and the convergence tracker."""

import pytest

from repro.core.config import LaacadConfig
from repro.core.convergence import ConvergenceTracker


class TestLaacadConfig:
    def test_defaults_are_valid(self):
        config = LaacadConfig()
        assert config.k == 1 and config.alpha == 1.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"k": 0},
            {"alpha": 0.0},
            {"alpha": 1.5},
            {"epsilon": 0.0},
            {"max_rounds": 0},
            {"tau_ms": 0.0},
            {"ring_granularity": 0.0},
            {"circle_check_samples": 4},
            {"convergence_patience": 0},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            LaacadConfig(**kwargs)

    def test_with_k(self):
        config = LaacadConfig(k=1, alpha=0.5)
        other = config.with_k(3)
        assert other.k == 3 and other.alpha == 0.5
        assert config.k == 1  # original untouched (frozen dataclass)

    def test_with_alpha(self):
        config = LaacadConfig(k=2)
        assert config.with_alpha(0.25).alpha == 0.25

    def test_frozen(self):
        config = LaacadConfig()
        with pytest.raises(Exception):
            config.k = 5  # type: ignore[misc]


class TestConvergenceTracker:
    def test_validation(self):
        with pytest.raises(ValueError):
            ConvergenceTracker(epsilon=0.0)
        with pytest.raises(ValueError):
            ConvergenceTracker(epsilon=0.1, patience=0)

    def test_converges_when_displacements_small(self):
        tracker = ConvergenceTracker(epsilon=0.01)
        assert not tracker.observe([0.5, 0.2])
        assert tracker.observe([0.005, 0.002])
        assert tracker.converged

    def test_patience_requires_consecutive_rounds(self):
        tracker = ConvergenceTracker(epsilon=0.01, patience=2)
        assert not tracker.observe([0.001])
        assert tracker.observe([0.001])

    def test_streak_resets_on_large_displacement(self):
        tracker = ConvergenceTracker(epsilon=0.01, patience=2)
        tracker.observe([0.001])
        tracker.observe([0.5])
        assert not tracker.observe([0.001])

    def test_empty_displacements_count_as_converged_round(self):
        tracker = ConvergenceTracker(epsilon=0.01)
        assert tracker.observe([])

    def test_history_and_accessors(self):
        tracker = ConvergenceTracker(epsilon=0.01)
        assert tracker.last_max_displacement() is None
        tracker.observe([0.3, 0.1])
        tracker.observe([0.2])
        assert tracker.rounds_observed == 2
        assert tracker.max_displacement_history == [0.3, 0.2]
        assert tracker.last_max_displacement() == 0.2
