"""Unit tests for Algorithm 2 (localized dominating-region computation)."""

import numpy as np
import pytest

from repro.core.dominating import localized_dominating_region
from repro.network.network import SensorNetwork
from repro.regions.shapes import figure8_region_one, unit_square
from repro.voronoi.dominating import compute_dominating_region


@pytest.fixture
def dense_network(square):
    rng = np.random.default_rng(42)
    return SensorNetwork.from_random(square, 30, comm_range=0.25, rng=rng)


class TestLocalizedComputation:
    def test_invalid_k_rejected(self, dense_network):
        with pytest.raises(ValueError):
            localized_dominating_region(dense_network, 0, 0)

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_matches_global_computation(self, dense_network, k):
        positions = dense_network.positions()
        for node_id in (0, 10, 20):
            others = [p for j, p in enumerate(positions) if j != node_id]
            global_region = compute_dominating_region(
                positions[node_id], others, dense_network.region, k
            )
            local = localized_dominating_region(dense_network, node_id, k)
            assert local.region.area == pytest.approx(global_region.area, rel=1e-6, abs=1e-9)
            assert local.region.circumradius(positions[node_id]) == pytest.approx(
                global_region.circumradius(positions[node_id]), rel=1e-6
            )

    def test_locality_ring_much_smaller_than_network(self, dense_network):
        comp = localized_dominating_region(dense_network, 0, 1)
        assert comp.ring_radius < dense_network.region.diameter
        assert comp.neighbors_used < dense_network.size - 1

    def test_hops_grow_with_k(self, dense_network):
        hops = [
            localized_dominating_region(dense_network, 5, k).hops for k in (1, 3, 6)
        ]
        assert hops[0] <= hops[1] <= hops[2]

    def test_ring_expansions_counted(self, dense_network):
        comp = localized_dominating_region(dense_network, 0, 2)
        assert comp.ring_expansions >= 1
        assert comp.ring_radius == pytest.approx(
            comp.ring_expansions * dense_network.comm_range, rel=1e-9
        )

    def test_max_radius_cap(self, square):
        # Only 3 nodes but k = 3: the circle check can never pass, so the
        # ring must stop at the cap and include everyone.
        net = SensorNetwork(square, [(0.2, 0.2), (0.8, 0.2), (0.5, 0.8)], comm_range=0.2)
        comp = localized_dominating_region(net, 0, 3)
        assert comp.neighbors_used == 2
        assert comp.region.area == pytest.approx(square.area)

    def test_with_localization_noise_free(self, dense_network):
        exact = localized_dominating_region(dense_network, 3, 2)
        localized = localized_dominating_region(
            dense_network, 3, 2, use_localization=True, localization_noise_std=0.0
        )
        assert localized.used_localization
        assert localized.region.area == pytest.approx(exact.region.area, rel=1e-4)

    def test_with_localization_noise(self, dense_network):
        rng = np.random.default_rng(0)
        noisy = localized_dominating_region(
            dense_network,
            3,
            2,
            use_localization=True,
            localization_noise_std=0.001,
            rng=rng,
        )
        exact = localized_dominating_region(dense_network, 3, 2)
        # Small range noise perturbs the region only slightly.
        assert noisy.region.area == pytest.approx(exact.region.area, rel=0.2)

    def test_region_with_obstacle(self):
        region = figure8_region_one()
        rng = np.random.default_rng(8)
        net = SensorNetwork.from_random(region, 20, comm_range=0.25, rng=rng)
        comp = localized_dominating_region(net, 0, 2)
        assert not comp.region.contains((0.5, 0.5), eps=1e-9)

    def test_dead_neighbors_ignored(self, dense_network):
        before = localized_dominating_region(dense_network, 0, 1)
        # Kill the nearest neighbour: the region can only grow.
        nearest = dense_network.k_nearest(dense_network.node(0).position, 1, exclude=0)[0]
        dense_network.kill_node(nearest)
        after = localized_dominating_region(dense_network, 0, 1)
        assert after.region.area >= before.region.area - 1e-9
