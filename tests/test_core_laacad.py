"""Unit tests for Algorithm 1 (driven through repro.api) and the min-node sizer."""

import numpy as np
import pytest

from repro.analysis.coverage import evaluate_coverage, is_k_covered
from repro.analysis.traces import is_monotone_nonincreasing
from repro.api import Simulation, deploy
from repro.core.config import LaacadConfig
from repro.core.minnode import MinNodeSizer
from repro.geometry.primitives import distance
from repro.network.mobility import MobilityModel
from repro.network.network import SensorNetwork
from repro.regions.shapes import unit_square


class TestRunnerBasics:
    def test_requires_enough_nodes(self, square):
        net = SensorNetwork(square, [(0.5, 0.5)], comm_range=0.3)
        with pytest.raises(ValueError):
            Simulation(network=net, config=LaacadConfig(k=2))

    def test_result_fields(self, corner_network, fast_config):
        result = Simulation(network=corner_network, config=fast_config).run()
        assert result.rounds_executed == len(result.history)
        assert len(result.final_positions) == corner_network.size
        assert len(result.sensing_ranges) == corner_network.size
        assert result.max_sensing_range >= result.min_sensing_range > 0
        assert result.config is fast_config

    def test_network_mutated_in_place(self, corner_network, fast_config):
        initial = list(corner_network.positions())
        result = Simulation(network=corner_network, config=fast_config).run()
        assert corner_network.positions() == result.final_positions
        assert corner_network.positions() != initial
        assert corner_network.sensing_ranges() == result.sensing_ranges

    def test_record_positions(self, square):
        net = SensorNetwork.from_random(square, 8, comm_range=0.4, rng=np.random.default_rng(0))
        config = LaacadConfig(k=1, max_rounds=10, record_positions=True)
        result = Simulation(network=net, config=config).run()
        assert result.position_history is not None
        assert len(result.position_history) >= 1
        assert len(result.position_history[0]) == 8

    def test_deploy_convenience(self, square):
        positions = square.random_points(8, rng=np.random.default_rng(1))
        result = deploy(square, positions, LaacadConfig(k=1, max_rounds=20))
        assert result.initial_positions == positions

    def test_single_node_k1(self, square):
        result = deploy(square, [(0.1, 0.1)], LaacadConfig(k=1, max_rounds=30))
        # The node moves to the Chebyshev center of the square and covers it.
        assert result.final_positions[0] == pytest.approx((0.5, 0.5), abs=1e-2)
        assert result.max_sensing_range == pytest.approx(np.sqrt(0.5), rel=1e-2)

    def test_max_rounds_respected(self, square):
        net = SensorNetwork.from_corner_cluster(
            square, 15, comm_range=0.3, rng=np.random.default_rng(2)
        )
        result = Simulation(network=net, config=LaacadConfig(k=2, max_rounds=3)).run()
        assert result.rounds_executed == 3
        assert not result.converged


class TestCoverageGuarantee:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_k_coverage_achieved(self, square, k):
        net = SensorNetwork.from_random(
            square, 16, comm_range=0.35, rng=np.random.default_rng(10 + k)
        )
        config = LaacadConfig(k=k, alpha=1.0, epsilon=2e-3, max_rounds=80)
        result = Simulation(network=net, config=config).run()
        assert is_k_covered(
            result.final_positions, result.sensing_ranges, square, k, resolution=45
        )

    def test_coverage_holds_even_without_convergence(self, square):
        net = SensorNetwork.from_corner_cluster(
            square, 15, comm_range=0.3, rng=np.random.default_rng(5)
        )
        config = LaacadConfig(k=2, alpha=1.0, epsilon=1e-4, max_rounds=5)
        result = Simulation(network=net, config=config).run()
        report = evaluate_coverage(
            result.final_positions, result.sensing_ranges, square, 2, resolution=45
        )
        assert report.fully_covered

    def test_nodes_stay_in_region(self, complex_region):
        net = SensorNetwork.from_random(
            complex_region, 20, comm_range=0.3, rng=np.random.default_rng(6)
        )
        config = LaacadConfig(k=2, alpha=1.0, epsilon=2e-3, max_rounds=50)
        result = Simulation(network=net, config=config).run()
        assert all(complex_region.contains(p) for p in result.final_positions)


class TestConvergenceBehaviour:
    def test_max_range_trace_monotone_for_alpha_one(self, corner_network):
        config = LaacadConfig(k=2, alpha=1.0, epsilon=1e-3, max_rounds=80)
        result = Simulation(network=corner_network, config=config).run()
        trace = [s.max_range_from_position for s in result.history]
        assert is_monotone_nonincreasing(trace, tolerance=1e-6)

    def test_converged_deployment_is_balanced(self, square):
        net = SensorNetwork.from_random(
            square, 20, comm_range=0.3, rng=np.random.default_rng(7)
        )
        config = LaacadConfig(k=3, alpha=1.0, epsilon=1e-3, max_rounds=100)
        result = Simulation(network=net, config=config).run()
        assert result.converged
        # Load balancing: max and min sensing ranges are close (Sec. V-A).
        assert result.min_sensing_range / result.max_sensing_range > 0.6

    def test_smaller_alpha_needs_more_rounds(self, square):
        def rounds_for(alpha):
            net = SensorNetwork.from_corner_cluster(
                square, 12, comm_range=0.3, rng=np.random.default_rng(8)
            )
            config = LaacadConfig(k=1, alpha=alpha, epsilon=2e-3, max_rounds=200)
            return Simulation(network=net, config=config).run().rounds_executed

        assert rounds_for(0.3) > rounds_for(1.0)

    def test_convergence_displacement_below_epsilon(self, square):
        net = SensorNetwork.from_random(
            square, 12, comm_range=0.35, rng=np.random.default_rng(9)
        )
        config = LaacadConfig(k=2, alpha=1.0, epsilon=2e-3, max_rounds=80)
        result = Simulation(network=net, config=config).run()
        assert result.converged
        assert result.history[-1].max_displacement <= config.epsilon

    def test_localized_backend_matches_global(self, square):
        positions = square.random_points(12, rng=np.random.default_rng(14))
        cfg_global = LaacadConfig(k=2, alpha=1.0, epsilon=2e-3, max_rounds=25)
        cfg_local = LaacadConfig(
            k=2, alpha=1.0, epsilon=2e-3, max_rounds=25, use_localized=True
        )
        res_global = deploy(square, positions, cfg_global, comm_range=0.3)
        res_local = deploy(square, positions, cfg_local, comm_range=0.3)
        assert res_local.max_sensing_range == pytest.approx(
            res_global.max_sensing_range, rel=1e-6
        )
        for a, b in zip(res_global.final_positions, res_local.final_positions):
            assert distance(a, b) < 1e-6


class TestMobilityIntegration:
    def test_max_step_slows_expansion(self, square):
        net = SensorNetwork.from_corner_cluster(
            square, 10, comm_range=0.3, rng=np.random.default_rng(11)
        )
        config = LaacadConfig(k=1, alpha=1.0, epsilon=2e-3, max_rounds=4)
        result_limited = Simulation(network=net, config=config, mobility=MobilityModel(max_step=0.02)).run()
        net2 = SensorNetwork.from_corner_cluster(
            square, 10, comm_range=0.3, rng=np.random.default_rng(11)
        )
        result_free = Simulation(network=net2, config=config).run()
        assert result_limited.total_distance_traveled() < result_free.total_distance_traveled()


class TestResultHelpers:
    def test_traces_and_spread(self, corner_network, fast_config):
        result = Simulation(network=corner_network, config=fast_config).run()
        assert len(result.max_circumradius_trace()) == result.rounds_executed
        assert len(result.min_circumradius_trace()) == result.rounds_executed
        assert result.range_spread == pytest.approx(
            result.max_sensing_range - result.min_sensing_range
        )
        assert result.total_distance_traveled() > 0


class TestMinNodeSizer:
    def test_validation(self, square):
        with pytest.raises(ValueError):
            MinNodeSizer(square, k=0)
        sizer = MinNodeSizer(square, k=2, config=LaacadConfig(k=2, max_rounds=10))
        with pytest.raises(ValueError):
            sizer.analytic_estimate(0.0)
        with pytest.raises(ValueError):
            sizer.required_range(1)
        with pytest.raises(ValueError):
            sizer.find_min_nodes(-1.0)

    def test_analytic_estimate_scales_with_range(self, square):
        sizer = MinNodeSizer(square, k=2)
        assert sizer.analytic_estimate(0.1) > sizer.analytic_estimate(0.3)

    def test_required_range_cached_and_decreasing(self, square):
        config = LaacadConfig(k=1, alpha=1.0, epsilon=5e-3, max_rounds=25)
        sizer = MinNodeSizer(square, k=1, config=config, seed=2)
        r_small = sizer.required_range(6)
        assert sizer.required_range(6) == r_small  # cached
        r_large = sizer.required_range(18)
        assert r_large < r_small

    def test_find_min_nodes_reaches_target(self, square):
        config = LaacadConfig(k=1, alpha=1.0, epsilon=5e-3, max_rounds=25)
        sizer = MinNodeSizer(square, k=1, config=config, seed=4)
        result = sizer.find_min_nodes(target_range=0.3, max_evaluations=6)
        assert result.achieved_range <= 0.3 + 1e-6
        assert result.node_count >= 1
        assert result.evaluations
