"""Equivalence suite: batched distributed engine == legacy agents, bitwise.

The batched round-level backend promises results *identical* to the
message-level agent path — final positions, sensing ranges, every
``DistributedRoundStats`` field (communication counters included) and
the cumulative ``CommunicationSummary`` — across loss rates, seeds,
failure schedules and regions (obstacles exercise the batched
containment kernel).  Lossy runs are the sharp edge: equality requires
the batched backend to consume the scheduler RNG draw-for-draw in the
legacy order (see the contract in ``repro/runtime/engines.py``), so
these tests enforce exact equality (``==``, no tolerances).

Loss-free distributed runs are additionally checked against the
*centralized* driver's trajectory — the paper's claim that with a
reliable channel the protocol executes Algorithm 1 exactly.
"""

import dataclasses

import numpy as np
import pytest

from repro.api import Simulation, deploy
from repro.core.config import LaacadConfig
from repro.geometry.primitives import distance
from repro.network.network import SensorNetwork
from repro.regions.shapes import figure8_region_two, l_shaped_region, unit_square
from repro.runtime.engines import (
    BatchedDistributedEngine,
    LegacyDistributedEngine,
    available_distributed_engines,
    make_distributed_engine,
)
from repro.runtime.failures import FailureInjector
from repro.runtime.scheduler import SynchronousScheduler


def _run_distributed(
    engine,
    seed,
    drop_probability=0.0,
    failures=None,
    region=None,
    count=14,
    comm_range=0.3,
    **config_kwargs,
):
    region = region if region is not None else unit_square()
    network = SensorNetwork.from_random(
        region, count, comm_range=comm_range, rng=np.random.default_rng(seed)
    )
    config_kwargs.setdefault("k", 2)
    config_kwargs.setdefault("epsilon", 2e-3)
    config_kwargs.setdefault("max_rounds", 12)
    config = LaacadConfig(engine=engine, **config_kwargs)
    injector = (
        FailureInjector(
            scheduled=dict(failures.get("scheduled", {})),
            random_failure_rate=failures.get("random_failure_rate", 0.0),
            rng=np.random.default_rng(failures.get("seed", 0)),
        )
        if failures
        else None
    )
    return Simulation(
        network=network,
        config=config,
        kind="distributed",
        drop_probability=drop_probability,
        failure_injector=injector,
    ).run()


def _assert_identical(result_a, result_b):
    assert result_a.final_positions == result_b.final_positions
    assert result_a.sensing_ranges == result_b.sensing_ranges
    assert result_a.converged == result_b.converged
    assert result_a.rounds_executed == result_b.rounds_executed
    assert len(result_a.history) == len(result_b.history)
    for stats_a, stats_b in zip(result_a.history, result_b.history):
        assert dataclasses.asdict(stats_a) == dataclasses.asdict(stats_b)
    assert result_a.communication == result_b.communication
    assert result_a.killed_nodes == result_b.killed_nodes


class TestLossyEquivalence:
    """The tentpole contract: bitwise identity across the loss model."""

    @pytest.mark.parametrize("seed", [1, 7, 23])
    @pytest.mark.parametrize("drop_probability", [0.0, 0.02, 0.15])
    def test_loss_rates_and_seeds(self, seed, drop_probability):
        result_legacy = _run_distributed(
            "legacy", seed, drop_probability=drop_probability
        )
        result_batched = _run_distributed(
            "batched", seed, drop_probability=drop_probability
        )
        if drop_probability:
            assert result_batched.communication.dropped > 0
        _assert_identical(result_legacy, result_batched)

    @pytest.mark.parametrize("drop_probability", [0.0, 0.1])
    def test_failure_injection(self, drop_probability):
        failures = {"scheduled": {3: [0, 1], 6: [5]}, "seed": 4}
        result_legacy = _run_distributed(
            "legacy", 9, drop_probability=drop_probability, failures=failures
        )
        result_batched = _run_distributed(
            "batched", 9, drop_probability=drop_probability, failures=failures
        )
        assert result_batched.killed_nodes == [0, 1, 5]
        _assert_identical(result_legacy, result_batched)

    def test_random_failures(self):
        failures = {"random_failure_rate": 0.01, "seed": 2}
        result_legacy = _run_distributed(
            "legacy", 13, drop_probability=0.05, failures=failures
        )
        result_batched = _run_distributed(
            "batched", 13, drop_probability=0.05, failures=failures
        )
        _assert_identical(result_legacy, result_batched)

    @pytest.mark.parametrize(
        "region_factory", [l_shaped_region, figure8_region_two]
    )
    def test_obstacle_regions(self, region_factory):
        # Holes exercise the batched containment kernel's hole branch
        # and the circle check near obstacle boundaries.
        result_legacy = _run_distributed(
            "legacy", 3, drop_probability=0.08, region=region_factory(), count=18
        )
        result_batched = _run_distributed(
            "batched", 3, drop_probability=0.08, region=region_factory(), count=18
        )
        _assert_identical(result_legacy, result_batched)

    @pytest.mark.parametrize("k", [1, 3])
    def test_coverage_orders(self, k):
        result_legacy = _run_distributed("legacy", 31 + k, drop_probability=0.05, k=k)
        result_batched = _run_distributed("batched", 31 + k, drop_probability=0.05, k=k)
        _assert_identical(result_legacy, result_batched)

    def test_fractional_alpha_and_round_cap(self):
        # A run that hits the round cap exercises the result() refresh
        # round, which also consumes loss draws — in both backends.
        result_legacy = _run_distributed(
            "legacy", 17, drop_probability=0.1, alpha=0.5, max_rounds=4
        )
        result_batched = _run_distributed(
            "batched", 17, drop_probability=0.1, alpha=0.5, max_rounds=4
        )
        assert not result_batched.converged
        _assert_identical(result_legacy, result_batched)


class TestCentralizedAgreement:
    """Loss-free distributed == centralized trajectory (both backends)."""

    @pytest.mark.parametrize("engine", ["legacy", "batched"])
    def test_matches_centralized_driver(self, engine):
        region = unit_square()
        positions = region.random_points(14, rng=np.random.default_rng(8))
        config = LaacadConfig(k=2, alpha=1.0, epsilon=2e-3, max_rounds=30)

        central = deploy(region, positions, config, comm_range=0.35)

        network = SensorNetwork(region, positions, comm_range=0.35)
        distributed = Simulation(
            network=network,
            config=config.with_engine(engine),
            kind="distributed",
        ).run()

        assert distributed.rounds_executed == central.rounds_executed
        assert distributed.max_sensing_range == pytest.approx(
            central.max_sensing_range, rel=1e-6
        )
        for a, b in zip(central.final_positions, distributed.final_positions):
            assert distance(a, b) < 1e-6

    def test_loss_free_engines_agree_with_each_other_exactly(self):
        result_legacy = _run_distributed("legacy", 42)
        result_batched = _run_distributed("batched", 42)
        assert result_batched.communication.dropped == 0
        _assert_identical(result_legacy, result_batched)


class TestEngineSelection:
    def test_registry_lists_builtins(self):
        assert {"legacy", "batched"} <= set(available_distributed_engines())

    def test_unknown_engine_rejected(self, square):
        network = SensorNetwork(square, [(0.5, 0.5)], comm_range=0.3)
        scheduler = SynchronousScheduler()
        with pytest.raises(ValueError, match="unknown distributed round engine"):
            make_distributed_engine("warp-drive", network, LaacadConfig(), scheduler)

    def test_deployer_uses_configured_engine(self, square):
        def _sim(engine):
            network = SensorNetwork(
                square, [(0.2, 0.2), (0.8, 0.8)], comm_range=0.4
            )
            return Simulation(
                network=network,
                config=LaacadConfig(k=1, engine=engine),
                kind="distributed",
            )

        assert isinstance(_sim("legacy").deployer.protocol, LegacyDistributedEngine)
        assert isinstance(_sim("batched").deployer.protocol, BatchedDistributedEngine)

    def test_batched_deployer_still_exposes_agents(self, square):
        # The deprecated DistributedLaacadRunner surface: same keys,
        # inert agents, materialised lazily.
        network = SensorNetwork.from_random(
            square, 6, comm_range=0.4, rng=np.random.default_rng(0)
        )
        sim = Simulation(
            network=network, config=LaacadConfig(k=1), kind="distributed"
        )
        assert set(sim.deployer.agents) == set(range(6))
