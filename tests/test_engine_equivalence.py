"""Property-style equivalence suite: batched engine == legacy engine.

The batched array-native round engine promises results *identical* to
the legacy per-node path — positions, sensing ranges and every
``RoundStats`` field, over whole deployments, across regions (including
obstacle regions), coverage orders and both region back-ends (exact
global and the localized Algorithm-2 expanding ring).  These tests
enforce exact equality (``==``, no tolerances) on randomized instances
with fixed seeds.
"""

import dataclasses

import numpy as np
import pytest

from repro.api import Simulation
from repro.core.config import LaacadConfig
from repro.engine import (
    BatchedRoundEngine,
    LegacyRoundEngine,
    available_engines,
    make_engine,
)
from repro.network.network import SensorNetwork
from repro.regions.shapes import (
    figure8_region_one,
    figure8_region_two,
    l_shaped_region,
    unit_square,
)


def _build_network(region, count, seed, corner=False, comm_range=0.3):
    rng = np.random.default_rng(seed)
    if corner:
        return SensorNetwork.from_corner_cluster(
            region, count, comm_range=comm_range, rng=rng
        )
    return SensorNetwork.from_random(region, count, comm_range=comm_range, rng=rng)


def _run(engine, region, count, seed, corner=False, **config_kwargs):
    network = _build_network(region, count, seed, corner=corner)
    config = LaacadConfig(engine=engine, **config_kwargs)
    return Simulation(network=network, config=config).run()


def _assert_identical(result_a, result_b):
    assert result_a.final_positions == result_b.final_positions
    assert result_a.sensing_ranges == result_b.sensing_ranges
    assert result_a.converged == result_b.converged
    assert result_a.rounds_executed == result_b.rounds_executed
    assert len(result_a.history) == len(result_b.history)
    for stats_a, stats_b in zip(result_a.history, result_b.history):
        assert dataclasses.asdict(stats_a) == dataclasses.asdict(stats_b)


REGION_FACTORIES = {
    "square": unit_square,
    "l-shaped": l_shaped_region,
    "one-obstacle": figure8_region_one,
    "two-obstacles": figure8_region_two,
}


class TestFullRunEquivalence:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_random_deployments(self, k):
        result_legacy = _run(
            "legacy", unit_square(), 12, seed=100 + k, k=k, max_rounds=12
        )
        result_batched = _run(
            "batched", unit_square(), 12, seed=100 + k, k=k, max_rounds=12
        )
        _assert_identical(result_legacy, result_batched)

    @pytest.mark.parametrize("region_name", sorted(REGION_FACTORIES))
    def test_regions_including_obstacles(self, region_name):
        region = REGION_FACTORIES[region_name]()
        result_legacy = _run("legacy", region, 13, seed=7, k=2, max_rounds=10)
        result_batched = _run("batched", region, 13, seed=7, k=2, max_rounds=10)
        _assert_identical(result_legacy, result_batched)

    def test_corner_cluster_start(self):
        result_legacy = _run(
            "legacy", unit_square(), 14, seed=3, corner=True, k=2, max_rounds=15
        )
        result_batched = _run(
            "batched", unit_square(), 14, seed=3, corner=True, k=2, max_rounds=15
        )
        _assert_identical(result_legacy, result_batched)

    def test_localized_algorithm2_backend(self):
        result_legacy = _run(
            "legacy", unit_square(), 10, seed=21, k=2, max_rounds=8, use_localized=True
        )
        result_batched = _run(
            "batched", unit_square(), 10, seed=21, k=2, max_rounds=8, use_localized=True
        )
        _assert_identical(result_legacy, result_batched)
        assert any(s.max_ring_hops > 0 for s in result_batched.history)

    def test_prefilter_disabled(self):
        result_legacy = _run(
            "legacy", unit_square(), 10, seed=5, k=2, max_rounds=8, prefilter=False
        )
        result_batched = _run(
            "batched", unit_square(), 10, seed=5, k=2, max_rounds=8, prefilter=False
        )
        _assert_identical(result_legacy, result_batched)

    def test_fractional_alpha(self):
        result_legacy = _run(
            "legacy", unit_square(), 11, seed=9, k=2, alpha=0.5, max_rounds=12
        )
        result_batched = _run(
            "batched", unit_square(), 11, seed=9, k=2, alpha=0.5, max_rounds=12
        )
        _assert_identical(result_legacy, result_batched)


class TestRoundLevelEquivalence:
    def test_compute_round_identical_with_dead_nodes(self, square):
        rng = np.random.default_rng(17)
        positions = square.random_points(15, rng=rng)
        config = LaacadConfig(k=2)
        net_a = SensorNetwork(square, positions, comm_range=0.3)
        net_b = SensorNetwork(square, positions, comm_range=0.3)
        for node_id in (4, 11):
            net_a.kill_node(node_id)
            net_b.kill_node(node_id)
        round_legacy = LegacyRoundEngine(net_a, config).compute_round()
        round_batched = BatchedRoundEngine(net_b, config).compute_round()
        assert list(round_legacy.regions) == list(round_batched.regions)
        assert 4 not in round_batched.regions and 11 not in round_batched.regions
        assert round_legacy.centers == round_batched.centers
        assert round_legacy.circumradii == round_batched.circumradii
        assert round_legacy.ranges_from_position == round_batched.ranges_from_position
        assert round_legacy.displacements == round_batched.displacements
        for node_id in round_legacy.regions:
            assert (
                round_legacy.regions[node_id].pieces
                == round_batched.regions[node_id].pieces
            )

    def test_single_node_network(self, square):
        config = LaacadConfig(k=1, max_rounds=5)
        result_legacy = Simulation(
            network=SensorNetwork(square, [(0.2, 0.3)], comm_range=0.3),
            config=config.with_engine("legacy"),
        ).run()
        result_batched = Simulation(
            network=SensorNetwork(square, [(0.2, 0.3)], comm_range=0.3),
            config=config.with_engine("batched"),
        ).run()
        _assert_identical(result_legacy, result_batched)


class TestEngineSelection:
    def test_registry_lists_builtins(self):
        assert {"legacy", "batched"} <= set(available_engines())

    def test_unknown_engine_rejected(self, square):
        network = SensorNetwork(square, [(0.5, 0.5)], comm_range=0.3)
        with pytest.raises(ValueError, match="unknown round engine"):
            make_engine("warp-drive", network, LaacadConfig())

    def test_config_engine_validation(self):
        with pytest.raises(ValueError):
            LaacadConfig(engine="")
        assert LaacadConfig().engine == "batched"
        assert LaacadConfig().with_engine("legacy").engine == "legacy"

    def test_session_uses_configured_engine(self, square):
        network = SensorNetwork(square, [(0.5, 0.5), (0.2, 0.8)], comm_range=0.3)
        sim = Simulation(network=network, config=LaacadConfig(k=1, engine="legacy"))
        assert isinstance(sim.deployer.engine, LegacyRoundEngine)
        network2 = SensorNetwork(square, [(0.5, 0.5), (0.2, 0.8)], comm_range=0.3)
        sim2 = Simulation(network=network2, config=LaacadConfig(k=1))
        assert isinstance(sim2.deployer.engine, BatchedRoundEngine)
