"""Unit tests for the engine subsystem's array kernels and state bridge.

The kernels promise *bitwise* agreement with the scalar geometry
helpers (see the numerical contract in ``repro.engine.kernels``), so
these tests compare with ``==``, not ``approx``.
"""

import math

import numpy as np
import pytest

from repro.engine.arrays import NodeArrayState
from repro.engine.kernels import (
    ClippingSweep,
    clip_ring_halfplane,
    cross_distances,
    disk_cover_counts,
    dominating_pieces_batch,
    halfplane_coefficient_arrays,
    pairwise_distance_matrix,
    select_competitors,
    split_ring_halfplane,
)
from repro.geometry.clipping import HalfPlane, clip_polygon_halfplane
from repro.geometry.convex import convex_hull
from repro.geometry.polygon import polygon_area
from repro.geometry.primitives import EPS, distance
from repro.network.neighbors import SpatialGrid, pairwise_distances
from repro.network.network import SensorNetwork
from repro.regions.shapes import figure8_region_one, unit_square
from repro.voronoi.dominating import dominating_pieces


def _random_convex_polygon(rng, n=8, scale=1.0):
    pts = [tuple(p) for p in rng.uniform(-scale, scale, size=(n + 4, 2))]
    hull = convex_hull(pts)
    assert len(hull) >= 3
    return hull


def _random_halfplane(rng):
    a, b = rng.uniform(-1.0, 1.0, size=2)
    if abs(a) < 1e-3 and abs(b) < 1e-3:
        a = 1.0
    c = rng.uniform(-0.5, 0.5)
    return HalfPlane(float(a), float(b), float(c))


class TestClipKernels:
    def test_clip_ring_matches_scalar_clip(self, rng):
        for trial in range(200):
            poly = _random_convex_polygon(rng)
            hp = _random_halfplane(rng)
            values = [hp.value(v) for v in poly]
            expected = clip_polygon_halfplane(poly, hp)
            got = clip_ring_halfplane(poly, values)
            assert got == expected

    def test_clip_ring_flipped_via_negated_values(self, rng):
        for trial in range(100):
            poly = _random_convex_polygon(rng)
            hp = _random_halfplane(rng)
            values = [hp.value(v) for v in poly]
            expected = clip_polygon_halfplane(poly, hp.flipped())
            got = clip_ring_halfplane(poly, [-v for v in values])
            assert got == expected

    def test_split_matches_two_one_sided_clips(self, rng):
        for trial in range(200):
            poly = _random_convex_polygon(rng)
            hp = _random_halfplane(rng)
            values = [hp.value(v) for v in poly]
            closer, closer_area, farther, farther_area = split_ring_halfplane(
                poly, values, EPS, True
            )
            expected_closer = clip_polygon_halfplane(poly, hp)
            expected_farther = clip_polygon_halfplane(poly, hp.flipped())
            if len(expected_closer) < 3:
                expected_closer = []
            if len(expected_farther) < 3:
                expected_farther = []
            assert closer == expected_closer
            assert farther == expected_farther
            if closer:
                assert closer_area == polygon_area(closer)
            if farther:
                assert farther_area == polygon_area(farther)

    def test_split_without_farther_side(self, rng):
        poly = _random_convex_polygon(rng)
        hp = _random_halfplane(rng)
        values = [hp.value(v) for v in poly]
        _, _, farther, farther_area = split_ring_halfplane(poly, values, EPS, False)
        assert farther == []
        assert farther_area == 0.0

    def test_halfplane_coefficients_match_bisector(self, rng):
        from repro.geometry.clipping import halfplane_from_bisector

        site = (0.31, 0.74)
        comps = rng.uniform(0, 1, size=(40, 2))
        a, b, c = halfplane_coefficient_arrays(site, comps)
        for i, comp in enumerate(comps):
            hp = halfplane_from_bisector(site, tuple(comp))
            assert a[i] == hp.a and b[i] == hp.b and c[i] == hp.c


class TestDominatingSweep:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_matches_scalar_sweep(self, k, rng):
        region = unit_square()
        pieces = region.convex_pieces()
        for trial in range(10):
            sites = [tuple(p) for p in rng.uniform(0, 1, size=(25, 2))]
            site, competitors = sites[0], sites[1:]
            expected = dominating_pieces(site, competitors, pieces, k)
            got = dominating_pieces_batch(site, np.asarray(competitors), pieces, k)
            assert got == expected

    def test_matches_scalar_sweep_with_holes(self, rng):
        region = figure8_region_one()
        pieces = region.convex_pieces()
        sites = region.random_points(20, rng=rng)
        site, competitors = sites[0], sites[1:]
        for k in (1, 2):
            expected = dominating_pieces(site, competitors, pieces, k)
            got = dominating_pieces_batch(site, np.asarray(competitors), pieces, k)
            assert got == expected

    def test_colocated_competitors_ignored(self):
        region = unit_square()
        pieces = region.convex_pieces()
        site = (0.5, 0.5)
        competitors = [(0.5, 0.5), (0.8, 0.2)]
        expected = dominating_pieces(site, competitors, pieces, 1)
        got = dominating_pieces_batch(site, np.asarray(competitors), pieces, 1)
        assert got == expected

    def test_incremental_extend_equals_one_shot(self, rng):
        """Folding ring batches incrementally == one sweep over the union."""
        region = unit_square()
        pieces = region.convex_pieces()
        site = (0.4, 0.6)
        comps = [tuple(p) for p in rng.uniform(0, 1, size=(30, 2))]
        comps.sort(key=lambda q: (q[0] - site[0]) ** 2 + (q[1] - site[1]) ** 2)
        for k in (1, 2, 3):
            sweep = ClippingSweep(site, pieces, k)
            # three expanding rings (each batch farther than the last)
            sweep.extend(np.asarray(comps[:8]))
            sweep.extend(np.asarray(comps[8:19]))
            sweep.extend(np.asarray(comps[19:]))
            assert sweep.pieces() == dominating_pieces(site, comps, pieces, k)

    def test_site_radius_matches_scalar_max(self, rng):
        region = unit_square()
        pieces = region.convex_pieces()
        site = (0.25, 0.3)
        sweep = ClippingSweep(site, pieces, 2)
        sweep.extend(rng.uniform(0, 1, size=(15, 2)))
        expected = max(
            (distance(site, v) for piece in sweep.pieces() for v in piece),
            default=0.0,
        )
        assert sweep.site_radius() == expected

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            dominating_pieces_batch((0.5, 0.5), np.zeros((0, 2)), [], 0)


class TestDistanceKernels:
    def test_pairwise_matrix_matches_reference(self, rng):
        pts = rng.uniform(0, 1, size=(40, 2))
        dense = pairwise_distance_matrix(pts)
        chunked = pairwise_distance_matrix(pts, chunk_size=7)
        reference = pairwise_distances([tuple(p) for p in pts])
        assert np.allclose(dense, reference, atol=1e-12)
        assert np.array_equal(dense, chunked)

    def test_cross_distances_chunking_is_exact(self, rng):
        a = rng.uniform(0, 1, size=(33, 2))
        b = rng.uniform(0, 1, size=(17, 2))
        dense = cross_distances(a, b)
        chunked = cross_distances(a, b, chunk_size=5)
        assert np.array_equal(dense, chunked)
        diff = a[:, None, :] - b[None, :, :]
        assert np.array_equal(dense, np.sqrt(np.sum(diff * diff, axis=2)))

    def test_disk_cover_counts_matches_dense_broadcast(self, rng):
        pos = rng.uniform(0, 1, size=(25, 2))
        ranges = rng.uniform(0.05, 0.4, size=25)
        samples = rng.uniform(0, 1, size=(300, 2))
        counts = disk_cover_counts(pos, ranges, samples, chunk_size=64)
        diff = samples[:, None, :] - pos[None, :, :]
        dist = np.sqrt(np.sum(diff * diff, axis=2))
        expected = (dist <= ranges[None, :] + 1e-9).sum(axis=1)
        assert np.array_equal(counts, expected)

    def test_disk_cover_counts_validation(self):
        with pytest.raises(ValueError):
            disk_cover_counts([(0.0, 0.0)], [0.1, 0.2], np.zeros((3, 2)))
        assert disk_cover_counts([(0.0, 0.0)], [0.1], np.zeros((0, 2))).size == 0

    def test_select_competitors_strict_and_ordered(self):
        row = np.asarray([0.0, 0.3, 0.1, 0.5, 0.3])
        picked = select_competitors(row, 0, 0.3)
        assert list(picked) == [2]
        picked = select_competitors(row, 2, 0.6)
        assert list(picked) == [0, 1, 3, 4]


class TestNodeArrayState:
    def test_round_trip(self, square, rng):
        network = SensorNetwork.from_random(square, 10, comm_range=0.3, rng=rng)
        network.set_sensing_range(3, 0.25)
        network.kill_node(7)
        state = network.array_state()
        assert isinstance(state, NodeArrayState)
        assert len(state) == 10
        assert state.positions.shape == (10, 2)
        assert not state.alive[7]
        assert state.sensing_ranges[3] == 0.25
        assert list(state.alive_node_ids()) == [i for i in range(10) if i != 7]
        assert state.alive_positions().shape == (9, 2)
        # mutate array-side and write back
        state.positions[0] = (0.5, 0.5)
        state.sensing_ranges[1] = 0.42
        state.apply_to_network(network)
        assert network.node(0).position == (0.5, 0.5)
        assert network.node(1).sensing_range == 0.42
        assert network.node(0).distance_traveled > 0.0

    def test_sensing_energy_vectorized(self, square, rng):
        network = SensorNetwork.from_random(square, 6, comm_range=0.3, rng=rng)
        for node in network.nodes:
            node.sensing_range = 0.1 * (node.node_id + 1)
        state = network.array_state()
        expected = [n.sensing_energy() for n in network.nodes]
        assert np.allclose(state.sensing_energy(), expected, atol=1e-15)

    def test_apply_rejects_mismatched_size(self, square, rng):
        network = SensorNetwork.from_random(square, 5, comm_range=0.3, rng=rng)
        state = network.array_state()
        other = SensorNetwork.from_random(square, 6, comm_range=0.3, rng=rng)
        with pytest.raises(ValueError):
            state.apply_to_network(other)

    def test_copy_is_independent(self, square, rng):
        network = SensorNetwork.from_random(square, 4, comm_range=0.3, rng=rng)
        state = network.array_state()
        clone = state.copy()
        clone.positions[0] = (9.0, 9.0)
        assert state.positions[0][0] != 9.0


class TestSpatialGridClamp:
    def test_huge_radius_returns_all_points(self, rng):
        pts = [tuple(p) for p in rng.uniform(0, 1, size=(50, 2))]
        grid = SpatialGrid(pts, cell_size=0.1)
        result = grid.query_radius((0.5, 0.5), 1e9)
        assert sorted(result) == list(range(50))

    def test_huge_radius_scans_only_occupied_window(self, rng):
        pts = [tuple(p) for p in rng.uniform(0, 1, size=(30, 2))]
        grid = SpatialGrid(pts, cell_size=0.1)
        # The occupied bucket bbox spans at most ~11 cells per axis, so
        # even an absurd radius must not iterate beyond it.
        span_x = grid._kx_max - grid._kx_min + 1
        span_y = grid._ky_max - grid._ky_min + 1
        assert span_x <= 12 and span_y <= 12
        far = grid.query_radius((50.0, -50.0), 1e6)
        assert sorted(far) == list(range(30))

    def test_results_match_brute_force(self, rng):
        pts = [tuple(p) for p in rng.uniform(0, 1, size=(60, 2))]
        grid = SpatialGrid(pts, cell_size=0.13)
        for radius in (0.0, 0.05, 0.2, 0.7, 5.0):
            center = (float(rng.uniform(0, 1)), float(rng.uniform(0, 1)))
            expected = sorted(
                i
                for i, p in enumerate(pts)
                if (p[0] - center[0]) ** 2 + (p[1] - center[1]) ** 2
                <= radius * radius + 1e-15
            )
            assert sorted(grid.query_radius(center, radius)) == expected

    def test_negative_radius_rejected(self):
        grid = SpatialGrid([(0.0, 0.0)], cell_size=0.1)
        with pytest.raises(ValueError):
            grid.query_radius((0.0, 0.0), -1.0)
