"""Equivalence suite for the sparse engine tier.

The sparse backends (``repro.engine.sparse.SparseRoundEngine`` and
``repro.runtime.sparse.SparseDistributedEngine``) promise a *tolerance*
contract against the batched backends — positions, ranges and areas
within 1e-9, identical convergence round counts and killed-node lists —
rather than the bitwise contract that ties ``batched`` to ``legacy``
(see DESIGN.md "Sparse engine tier").  Lossy distributed runs are the
sharp edge: the sparse gather must consume the scheduler RNG
draw-for-draw in the legacy order, so communication counters are
compared *exactly* there.

The suite also pins the foundation the tier is built on:
``SpatialGrid.query_radius_many`` must agree with per-call
``query_radius`` exactly — same indices, same order — because the
distributed RNG draw-order contract rides on that ordering.
"""

import dataclasses
import math

import numpy as np
import pytest

from repro.api import Simulation
from repro.core.config import LaacadConfig
from repro.engine import available_engines, make_engine
from repro.engine.kernels import (
    DENSE_MATRIX_BYTES_ENV,
    KERNEL_THREADS_ENV,
    pairwise_distance_and_sq,
    pairwise_distance_matrix,
    plan_chunks,
)
from repro.engine.sparse import SparseRoundEngine
from repro.network.neighbors import SpatialGrid
from repro.network.network import SensorNetwork
from repro.regions.shapes import figure8_region_two, l_shaped_region, unit_square
from repro.runtime.engines import (
    available_distributed_engines,
    make_distributed_engine,
)
from repro.runtime.failures import FailureInjector
from repro.runtime.scheduler import SynchronousScheduler
from repro.runtime.sparse import SparseDistributedEngine

TOL = 1e-9


@pytest.fixture(params=[1, 2, 7], ids=lambda t: f"threads{t}")
def kernel_thread_count(request, monkeypatch):
    """Sweep the kernel worker knob: equivalence must hold at any count.

    The chunk-ordered reduction contract (DESIGN.md "Kernel tiers")
    promises that ``REPRO_KERNEL_THREADS`` is bitwise invisible, so the
    tolerance results pinned by this suite cannot depend on it either.
    """
    monkeypatch.setenv(KERNEL_THREADS_ENV, str(request.param))
    return request.param


# ----------------------------------------------------------------------
# SpatialGrid batched queries: the candidate-pair foundation
# ----------------------------------------------------------------------
class TestQueryRadiusMany:
    def _random_grid(self, seed, count, cell_size):
        rng = np.random.default_rng(seed)
        points = rng.random((count, 2)) * [2.0, 1.3] - [0.4, 0.1]
        return SpatialGrid(points, cell_size=cell_size), points

    @pytest.mark.parametrize("seed", [0, 3, 11])
    @pytest.mark.parametrize("cell_size", [0.05, 0.21, 0.9])
    def test_matches_per_call_query_exactly(self, seed, cell_size):
        # Indices AND order: the distributed RNG draw-order contract
        # consumes ring members in query_radius's scan order.
        grid, points = self._random_grid(seed, 160, cell_size)
        rng = np.random.default_rng(seed + 1)
        centers = rng.random((40, 2)) * [2.4, 1.6] - [0.6, 0.3]
        radius = 0.27
        indices, indptr = grid.query_radius_many(centers, radius)
        assert indptr.shape == (centers.shape[0] + 1,)
        assert indptr[0] == 0 and indptr[-1] == indices.shape[0]
        for i, center in enumerate(centers):
            expected = grid.query_radius((center[0], center[1]), radius)
            got = indices[indptr[i] : indptr[i + 1]].tolist()
            assert got == expected

    def test_per_center_radii(self):
        grid, points = self._random_grid(7, 120, 0.1)
        rng = np.random.default_rng(8)
        centers = rng.random((30, 2))
        radii = rng.random(30) * 0.5
        indices, indptr = grid.query_radius_many(centers, radii)
        for i, (center, radius) in enumerate(zip(centers, radii)):
            expected = grid.query_radius((center[0], center[1]), float(radius))
            assert indices[indptr[i] : indptr[i + 1]].tolist() == expected

    def test_matches_brute_force_membership(self):
        grid, points = self._random_grid(5, 200, 0.13)
        rng = np.random.default_rng(6)
        centers = rng.random((25, 2))
        radius = 0.19
        indices, indptr = grid.query_radius_many(centers, radius)
        for i, center in enumerate(centers):
            dx = points[:, 0] - center[0]
            dy = points[:, 1] - center[1]
            inside = np.nonzero(dx * dx + dy * dy <= radius**2 + 1e-15)[0]
            got = indices[indptr[i] : indptr[i + 1]]
            assert set(got.tolist()) == set(inside.tolist())

    def test_contract_order_is_cell_major(self):
        # Ascending (cell_x, cell_y, index) with cell = floor(p / cell_size).
        grid, points = self._random_grid(9, 150, 0.22)
        indices, indptr = grid.query_radius_many(np.array([[0.5, 0.5]]), 0.45)
        got = indices[indptr[0] : indptr[1]]
        keys = [
            (math.floor(points[i, 0] / 0.22), math.floor(points[i, 1] / 0.22), i)
            for i in got.tolist()
        ]
        assert keys == sorted(keys)

    def test_degenerate_inputs(self):
        grid = SpatialGrid([], cell_size=0.1)
        indices, indptr = grid.query_radius_many(np.array([[0.0, 0.0]]), 1.0)
        assert indices.size == 0 and indptr.tolist() == [0, 0]

        grid, _ = self._random_grid(2, 50, 0.1)
        indices, indptr = grid.query_radius_many(np.zeros((0, 2)), 1.0)
        assert indices.size == 0 and indptr.tolist() == [0]

        # Zero radius only picks up exactly co-located points.
        pts = [(0.25, 0.25), (0.75, 0.75)]
        grid = SpatialGrid(pts, cell_size=0.5)
        indices, indptr = grid.query_radius_many(np.asarray(pts), 0.0)
        assert indices.tolist() == [0, 1]
        assert indptr.tolist() == [0, 1, 2]

        with pytest.raises(ValueError, match="radius"):
            grid.query_radius_many(np.asarray(pts), -0.5)

    def test_radius_far_beyond_extent(self):
        grid, points = self._random_grid(4, 80, 0.07)
        indices, indptr = grid.query_radius_many(np.array([[0.5, 0.5]]), 50.0)
        assert indptr[1] == points.shape[0]


# ----------------------------------------------------------------------
# Chunk planning and the dense-matrix memory guard
# ----------------------------------------------------------------------
class TestChunkedKernelPlumbing:
    def test_plan_chunks_covers_everything_within_budget(self):
        slices = list(plan_chunks(1000, bytes_per_item=64, budget=6400))
        assert slices[0][0] == 0 and slices[-1][1] == 1000
        for (start, stop), (next_start, _) in zip(slices, slices[1:]):
            assert stop == next_start
        assert all(stop - start <= 100 for start, stop in slices)

    def test_plan_chunks_degrades_to_single_items(self):
        # A per-item footprint above the budget must not fail.
        assert list(plan_chunks(3, bytes_per_item=100, budget=10)) == [
            (0, 1),
            (1, 2),
            (2, 3),
        ]
        assert list(plan_chunks(0, bytes_per_item=8)) == []
        with pytest.raises(ValueError):
            list(plan_chunks(5, bytes_per_item=0))

    def test_memory_guard_suggests_sparse_engine(self, monkeypatch):
        monkeypatch.setenv(DENSE_MATRIX_BYTES_ENV, str(1 << 10))
        points = np.random.default_rng(0).random((64, 2))
        with pytest.raises(MemoryError, match='engine="sparse"'):
            pairwise_distance_matrix(points)
        with pytest.raises(MemoryError, match="REPRO_DENSE_MATRIX_BYTES"):
            pairwise_distance_and_sq(points)

    def test_guard_leaves_small_inputs_alone(self, monkeypatch):
        monkeypatch.setenv(DENSE_MATRIX_BYTES_ENV, str(1 << 20))
        points = np.random.default_rng(0).random((40, 2))
        dist = pairwise_distance_matrix(points)
        assert dist.shape == (40, 40)


# ----------------------------------------------------------------------
# Centralized: sparse vs batched within tolerance
# ----------------------------------------------------------------------
def _centralized_round(engine_name, seed, count=60, k=2, region=None):
    region = region if region is not None else unit_square()
    network = SensorNetwork(
        region,
        region.random_points(count, rng=np.random.default_rng(seed)),
        comm_range=0.3,
    )
    engine = make_engine(
        engine_name, network, LaacadConfig(k=k, engine=engine_name)
    )
    return engine.compute_round()


class TestCentralizedSparseEquivalence:
    @pytest.mark.parametrize("seed", [1, 12])
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_round_summary_matches_batched(self, seed, k, kernel_thread_count):
        batched = _centralized_round("batched", seed, k=k)
        sparse = _centralized_round("sparse", seed, k=k)
        assert set(sparse.centers) == set(batched.centers)
        for node_id, center in batched.centers.items():
            other = sparse.centers[node_id]
            assert math.dist(center, other) <= TOL
        for a, b in zip(batched.circumradii, sparse.circumradii):
            assert abs(a - b) <= TOL
        for a, b in zip(batched.ranges_from_position, sparse.ranges_from_position):
            assert abs(a - b) <= TOL
        for a, b in zip(batched.displacements, sparse.displacements):
            assert abs(a - b) <= TOL

    @pytest.mark.parametrize(
        "region_factory", [l_shaped_region, figure8_region_two]
    )
    def test_obstacle_regions(self, region_factory):
        batched = _centralized_round("batched", 5, count=40, region=region_factory())
        sparse = _centralized_round("sparse", 5, count=40, region=region_factory())
        for node_id, center in batched.centers.items():
            assert math.dist(center, sparse.centers[node_id]) <= TOL
        areas_b = {nid: r.area for nid, r in batched.regions.items()}
        areas_s = {nid: r.area for nid, r in sparse.regions.items()}
        assert areas_b.keys() == areas_s.keys()
        for node_id, area in areas_b.items():
            assert abs(area - areas_s[node_id]) <= TOL

    def test_full_deployment_same_convergence(self):
        region = unit_square()
        positions = region.random_points(30, rng=np.random.default_rng(21))

        def run(engine_name):
            network = SensorNetwork(region, positions, comm_range=0.3)
            config = LaacadConfig(
                k=2, epsilon=2e-3, max_rounds=15, engine=engine_name
            )
            return Simulation(network=network, config=config).run()

        batched = run("batched")
        sparse = run("sparse")
        assert sparse.rounds_executed == batched.rounds_executed
        assert sparse.converged == batched.converged
        for a, b in zip(batched.final_positions, sparse.final_positions):
            assert math.dist(a, b) <= TOL
        for a, b in zip(batched.sensing_ranges, sparse.sensing_ranges):
            assert abs(a - b) <= TOL


# ----------------------------------------------------------------------
# Distributed: sparse vs batched across the loss model
# ----------------------------------------------------------------------
def _run_distributed(
    engine,
    seed,
    drop_probability=0.0,
    failures=None,
    region=None,
    count=14,
    comm_range=0.3,
    **config_kwargs,
):
    region = region if region is not None else unit_square()
    network = SensorNetwork.from_random(
        region, count, comm_range=comm_range, rng=np.random.default_rng(seed)
    )
    config_kwargs.setdefault("k", 2)
    config_kwargs.setdefault("epsilon", 2e-3)
    config_kwargs.setdefault("max_rounds", 12)
    config = LaacadConfig(engine=engine, **config_kwargs)
    injector = (
        FailureInjector(
            scheduled=dict(failures.get("scheduled", {})),
            random_failure_rate=failures.get("random_failure_rate", 0.0),
            rng=np.random.default_rng(failures.get("seed", 0)),
        )
        if failures
        else None
    )
    return Simulation(
        network=network,
        config=config,
        kind="distributed",
        drop_probability=drop_probability,
        failure_injector=injector,
    ).run()


def _assert_equivalent(batched, sparse):
    """The sparse tolerance contract against a batched reference run."""
    assert sparse.rounds_executed == batched.rounds_executed
    assert sparse.converged == batched.converged
    assert sparse.killed_nodes == batched.killed_nodes
    for a, b in zip(batched.final_positions, sparse.final_positions):
        assert math.dist(a, b) <= TOL
    for a, b in zip(batched.sensing_ranges, sparse.sensing_ranges):
        assert abs(a - b) <= TOL
    # The RNG draw-order contract makes message accounting exact, both
    # loss-free (no draws at all) and lossy (draw-for-draw identical).
    assert sparse.communication == batched.communication
    for stats_a, stats_b in zip(batched.history, sparse.history):
        a = dataclasses.asdict(stats_a)
        b = dataclasses.asdict(stats_b)
        assert a["messages"] == b["messages"]
        assert a["transmissions"] == b["transmissions"]
        assert a["bytes_sent"] == b["bytes_sent"]


class TestDistributedSparseEquivalence:
    @pytest.mark.parametrize("seed", [1, 7, 23])
    @pytest.mark.parametrize("drop_probability", [0.0, 0.02, 0.15])
    def test_loss_rates_and_seeds(self, seed, drop_probability, kernel_thread_count):
        batched = _run_distributed(
            "batched", seed, drop_probability=drop_probability
        )
        sparse = _run_distributed(
            "sparse", seed, drop_probability=drop_probability
        )
        if drop_probability:
            assert sparse.communication.dropped > 0
        _assert_equivalent(batched, sparse)

    @pytest.mark.parametrize("drop_probability", [0.0, 0.1])
    def test_failure_injection(self, drop_probability):
        failures = {"scheduled": {3: [0, 1], 6: [5]}, "seed": 4}
        batched = _run_distributed(
            "batched", 9, drop_probability=drop_probability, failures=failures
        )
        sparse = _run_distributed(
            "sparse", 9, drop_probability=drop_probability, failures=failures
        )
        assert sparse.killed_nodes == [0, 1, 5]
        _assert_equivalent(batched, sparse)

    @pytest.mark.parametrize(
        "region_factory", [l_shaped_region, figure8_region_two]
    )
    def test_obstacle_regions(self, region_factory):
        batched = _run_distributed(
            "batched", 3, drop_probability=0.08, region=region_factory(), count=18
        )
        sparse = _run_distributed(
            "sparse", 3, drop_probability=0.08, region=region_factory(), count=18
        )
        _assert_equivalent(batched, sparse)

    @pytest.mark.parametrize("k", [1, 3])
    def test_coverage_orders(self, k):
        batched = _run_distributed("batched", 31 + k, drop_probability=0.05, k=k)
        sparse = _run_distributed("sparse", 31 + k, drop_probability=0.05, k=k)
        _assert_equivalent(batched, sparse)


# ----------------------------------------------------------------------
# Thread-count determinism: the worker knob is bitwise invisible
# ----------------------------------------------------------------------
class TestKernelThreadDeterminism:
    """Stronger than the tolerance contract: for a *fixed* engine, any
    ``REPRO_KERNEL_THREADS`` value must reproduce the serial floats
    bitwise — the chunk-ordered reduction promise that lets CI compare
    baselines recorded on machines with different core counts.
    """

    def test_centralized_sparse_bitwise_across_thread_counts(self, monkeypatch):
        def run(threads):
            monkeypatch.setenv(KERNEL_THREADS_ENV, str(threads))
            return _centralized_round("sparse", 17, count=80, k=2)

        base = run(1)
        for threads in (2, 7):
            other = run(threads)
            assert other.centers == base.centers
            assert list(other.circumradii) == list(base.circumradii)
            assert list(other.ranges_from_position) == list(
                base.ranges_from_position
            )
            assert list(other.displacements) == list(base.displacements)

    def test_distributed_sparse_bitwise_across_thread_counts(self, monkeypatch):
        def run(threads):
            monkeypatch.setenv(KERNEL_THREADS_ENV, str(threads))
            return _run_distributed("sparse", 23, drop_probability=0.1)

        base = run(1)
        for threads in (2, 7):
            other = run(threads)
            assert other.rounds_executed == base.rounds_executed
            assert list(other.final_positions) == list(base.final_positions)
            assert list(other.sensing_ranges) == list(base.sensing_ranges)
            assert other.communication == base.communication


# ----------------------------------------------------------------------
# Registry and selection plumbing
# ----------------------------------------------------------------------
class TestSparseSelection:
    def test_both_registries_list_sparse(self):
        assert "sparse" in available_engines()
        assert "sparse" in available_distributed_engines()

    def test_factories_build_sparse_backends(self):
        region = unit_square()
        network = SensorNetwork(
            region, [(0.2, 0.2), (0.8, 0.8)], comm_range=0.4
        )
        config = LaacadConfig(k=1, engine="sparse")
        assert isinstance(
            make_engine("sparse", network, config), SparseRoundEngine
        )
        assert isinstance(
            make_distributed_engine(
                "sparse", network, config, SynchronousScheduler()
            ),
            SparseDistributedEngine,
        )

    def test_simulation_routes_to_sparse_distributed_engine(self):
        region = unit_square()
        network = SensorNetwork(
            region, [(0.2, 0.2), (0.8, 0.8)], comm_range=0.4
        )
        sim = Simulation(
            network=network,
            config=LaacadConfig(k=1, engine="sparse"),
            kind="distributed",
        )
        assert isinstance(sim.deployer.protocol, SparseDistributedEngine)
