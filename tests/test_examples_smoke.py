"""Smoke test: every example script executes end-to-end at reduced scale.

The examples double as documentation, so they must keep running as the
APIs evolve.  Each script honours ``REPRO_EXAMPLE_SCALE`` (see
``examples/_scale.py``); the smoke run shrinks the node counts and round
budgets to a fraction of the demonstration sizes.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLE_SCRIPTS = sorted(
    p for p in EXAMPLES_DIR.glob("*.py") if not p.name.startswith("_")
)


def test_every_example_is_covered():
    """The parametrized list below must pick up new example files."""
    assert len(EXAMPLE_SCRIPTS) >= 6


@pytest.mark.parametrize("script", EXAMPLE_SCRIPTS, ids=lambda p: p.name)
def test_example_runs_at_reduced_scale(script):
    env = dict(os.environ)
    src = str(Path(__file__).parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_EXAMPLE_SCALE"] = "0.25"
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )
    assert proc.returncode == 0, (
        f"{script.name} failed:\n--- stdout ---\n{proc.stdout[-2000:]}"
        f"\n--- stderr ---\n{proc.stderr[-2000:]}"
    )
    assert proc.stdout.strip(), f"{script.name} produced no output"
