"""Tests for the experiment runners and their CLI (reduced-scale smoke runs)."""

import json
import os

import pytest

from repro.experiments.ablations import (
    run_alpha_ablation,
    run_localized_ablation,
    run_protocol_overhead,
)
from repro.experiments.cli import EXPERIMENTS, build_parser, main
from repro.experiments.common import ExperimentResult, resolve_scale
from repro.experiments.fig1_voronoi import run_fig1_voronoi
from repro.experiments.fig2_rings import run_fig2_rings
from repro.experiments.fig5_deployment import (
    clustering_statistic,
    nearest_neighbor_distances,
    run_fig5_deployment,
)
from repro.experiments.fig6_convergence import run_fig6_convergence
from repro.experiments.fig7_energy import run_fig7_energy
from repro.experiments.fig8_obstacles import run_fig8_obstacles
from repro.experiments.table1_minnode import run_table1_minnode
from repro.experiments.table2_ammari import run_table2_ammari


class TestCommonInfrastructure:
    def test_resolve_scale_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL_SCALE", raising=False)
        assert resolve_scale() == "reduced"

    def test_resolve_scale_full(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL_SCALE", "1")
        assert resolve_scale() == "full"

    def test_result_columns_and_filter(self):
        result = ExperimentResult(
            name="demo",
            description="demo",
            rows=[{"a": 1, "b": 2}, {"a": 3, "c": 4}],
        )
        assert result.columns() == ["a", "b", "c"]
        assert result.filter_rows(a=3) == [{"a": 3, "c": 4}]

    def test_result_csv_json_roundtrip(self, tmp_path):
        result = ExperimentResult(
            name="demo", description="demo", rows=[{"x": 1.5, "label": "p"}],
            metadata={"seed": 1},
        )
        csv_path = result.to_csv(tmp_path / "demo.csv")
        json_path = result.to_json(tmp_path / "demo.json")
        assert csv_path.read_text().startswith("x,label")
        payload = json.loads(json_path.read_text())
        assert payload["rows"][0]["x"] == 1.5
        assert payload["metadata"]["seed"] == 1

    def test_format_table_truncation(self):
        result = ExperimentResult(
            name="demo", description="demo", rows=[{"v": i} for i in range(10)]
        )
        text = result.format_table(max_rows=3)
        assert "more rows" in text


class TestFigureRunners:
    def test_fig1_summary_rows(self):
        result = run_fig1_voronoi(node_count=14, k_values=(1, 2), seed_resolution=35)
        assert len(result.rows) == 2
        for row in result.rows:
            assert row["total_cell_area"] == pytest.approx(row["region_area"], rel=0.03)
            assert row["mean_dominating_area"] > 0
        k1 = result.filter_rows(k=1)[0]
        assert k1["num_cells"] == 14

    def test_fig2_hop_progression(self):
        result = run_fig2_rings(k_values=(1, 2, 4, 6))
        hops = [row["hops"] for row in result.rows]
        assert hops[0] == 1  # k = 1 handled by one-hop neighbours
        assert hops == sorted(hops)
        areas = [row["dominating_area"] for row in result.rows]
        assert areas == sorted(areas)

    def test_fig5_coverage_and_clustering(self):
        result = run_fig5_deployment(
            node_count=24, k_values=(1, 2), max_rounds=60, coverage_resolution=40
        )
        summary = [r for r in result.rows if "coverage_fraction" in r]
        assert len(summary) == 2
        for row in summary:
            assert row["coverage_fraction"] == 1.0
        k1 = result.filter_rows(k=1)[0]
        k2 = result.filter_rows(k=2)[0]
        # Nodes cluster for k = 2, so the nearest-neighbour statistic drops.
        assert k2["clustering_statistic"] < k1["clustering_statistic"]

    def test_fig5_include_positions(self):
        result = run_fig5_deployment(
            node_count=10, k_values=(1,), max_rounds=20, include_positions=True
        )
        position_rows = [r for r in result.rows if "node_id" in r]
        assert len(position_rows) == 10

    def test_fig6_traces_shape(self):
        result = run_fig6_convergence(node_count=20, k_values=(1, 2), max_rounds=50)
        k1_rows = result.filter_rows(k=1)
        assert len(k1_rows) >= 2
        maxima = [r["max_circumradius"] for r in k1_rows]
        assert all(b <= a + 1e-6 for a, b in zip(maxima, maxima[1:]))
        assert result.metadata["summaries"]["1"]["max_trace_monotone"]

    def test_fig7_energy_shapes(self):
        result = run_fig7_energy(
            node_counts=(15, 30), k_values=(1, 2), max_rounds=40, coverage_resolution=35
        )
        assert len(result.rows) == 4
        # Max load decreases with N and increases with k.
        def load(n, k):
            return result.filter_rows(node_count=n, k=k)[0]["max_load"]

        assert load(30, 1) < load(15, 1)
        assert load(15, 2) > load(15, 1)
        for row in result.rows:
            assert row["coverage_fraction"] == 1.0

    def test_table1_ratio_shape(self):
        result = run_table1_minnode(node_counts=(60,), max_rounds=40, comm_range=0.2)
        row = result.rows[0]
        assert row["bai_minimum_nodes"] > 0
        # LAACAD uses more nodes than the boundary-free lower bound, but
        # not absurdly more (the paper reports ~15%).
        assert 1.0 < row["laacad_over_bound"] < 2.0

    def test_table2_ammari_needs_more_nodes(self):
        result = run_table2_ammari(node_count=40, k_values=(3,), max_rounds=40)
        row = result.rows[0]
        assert row["ammari_nodes"] > row["laacad_nodes"]

    def test_fig8_obstacle_coverage(self):
        result = run_fig8_obstacles(
            node_count=30, k_values=(2,), max_rounds=50, coverage_resolution=45
        )
        assert len(result.rows) == 2  # two regions
        for row in result.rows:
            assert row["coverage_fraction"] >= 0.99
            assert row["all_nodes_in_free_area"]


class TestAblations:
    def test_alpha_ablation_rounds_increase_for_small_alpha(self):
        result = run_alpha_ablation(alphas=(0.5, 1.0), node_count=14, k=1, max_rounds=120)
        by_alpha = {row["alpha"]: row for row in result.rows}
        assert by_alpha[0.5]["rounds"] >= by_alpha[1.0]["rounds"]

    def test_localized_ablation_agreement(self):
        result = run_localized_ablation(node_count=16, k_values=(1, 2))
        for row in result.rows:
            assert row["max_range_difference"] < 1e-6

    def test_protocol_overhead_rows(self):
        result = run_protocol_overhead(node_count=12, k=1, max_rounds=20)
        assert result.rows
        assert result.metadata["total_messages"] > 0


@pytest.fixture(autouse=True)
def _isolate_runner_env():
    """The CLI threads --engine/--jobs/--cache-dir through the environment;
    keep those settings from leaking between tests."""
    keys = ("REPRO_ENGINE", "REPRO_JOBS", "REPRO_CACHE_DIR")
    saved = {key: os.environ.get(key) for key in keys}
    yield
    for key, value in saved.items():
        if value is None:
            os.environ.pop(key, None)
        else:
            os.environ[key] = value


class TestCli:
    def test_registry_complete(self):
        assert set(EXPERIMENTS) >= {
            "fig1_voronoi",
            "fig2_rings",
            "fig5_deployment",
            "fig6_convergence",
            "fig7_energy",
            "table1_minnode",
            "table2_ammari",
            "fig8_obstacles",
        }

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig6_convergence" in out

    def test_unknown_experiment(self, capsys):
        assert main(["run", "does_not_exist", "--no-files"]) == 2

    def test_run_writes_files(self, tmp_path, capsys):
        code = main(["run", "fig2_rings", "--output-dir", str(tmp_path)])
        assert code == 0
        assert (tmp_path / "fig2_rings.csv").exists()
        assert (tmp_path / "fig2_rings.json").exists()

    def test_parser_requires_command(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_list_shows_scenario_families(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "corner_cluster" in out
        assert "node_failures" in out


class TestSweepCommand:
    GRID_ARGS = [
        "sweep",
        "corner_cluster",
        "--grid",
        "k=1,2",
        "--set",
        "node_count=10",
        "--set",
        "max_rounds=6",
    ]

    def test_unknown_family(self, capsys):
        assert main(["sweep", "not_a_family", "--no-files"]) == 2
        assert "unknown scenario family" in capsys.readouterr().err

    def test_malformed_grid(self, capsys):
        assert main(["sweep", "corner_cluster", "--grid", "k", "--no-files"]) == 2
        assert "grid axis" in capsys.readouterr().err

    def test_typoed_parameter_is_a_clean_error(self, capsys):
        args = ["sweep", "corner_cluster", "--no-files"]
        assert main(args + ["--grid", "node_cout=8,9"]) == 2
        assert "unknown scenario parameter" in capsys.readouterr().err
        assert main(args + ["--set", "sed=3"]) == 2
        assert "unknown scenario parameter" in capsys.readouterr().err

    def test_jobs_must_be_positive(self, capsys):
        for bad in ("0", "-2"):
            with pytest.raises(SystemExit) as excinfo:
                main(["sweep", "corner_cluster", "--no-files", "--jobs", bad])
            assert excinfo.value.code == 2
        assert "must be >= 1" in capsys.readouterr().err

    def test_set_pins_default_grid_axis(self, tmp_path, capsys):
        out = tmp_path / "results"
        code = main(
            [
                "sweep",
                "corner_cluster",
                "--set",
                "k=2",
                "--set",
                "node_count=10",
                "--set",
                "max_rounds=5",
                "--output-dir",
                str(out),
            ]
        )
        assert code == 0
        capsys.readouterr()
        payload = json.loads((out / "sweep_corner_cluster.json").read_text())
        # The family's default grid sweeps k; --set k=2 pins it instead.
        assert [row["k"] for row in payload["rows"]] == [2]

    def test_sweep_writes_files_and_reports_cache(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        out = tmp_path / "results"
        args = self.GRID_ARGS + ["--cache-dir", str(cache), "--output-dir", str(out)]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "2 misses" in first
        assert (out / "sweep_corner_cluster.csv").exists()
        payload = json.loads((out / "sweep_corner_cluster.json").read_text())
        assert payload["metadata"]["cache_misses"] == 2
        assert [row["k"] for row in payload["rows"]] == [1, 2]

        # A second invocation over the same grid does zero simulation work.
        assert main(args) == 0
        second = capsys.readouterr().out
        assert "2 cache hits, 0 misses" in second

    def test_sweep_jobs_roundtrip_matches_serial(self, tmp_path, capsys):
        serial_out = tmp_path / "serial"
        parallel_out = tmp_path / "parallel"
        assert main(self.GRID_ARGS + ["--output-dir", str(serial_out)]) == 0
        assert (
            main(self.GRID_ARGS + ["--jobs", "2", "--output-dir", str(parallel_out)])
            == 0
        )
        capsys.readouterr()
        serial = json.loads((serial_out / "sweep_corner_cluster.json").read_text())
        parallel = json.loads((parallel_out / "sweep_corner_cluster.json").read_text())
        assert serial["rows"] == parallel["rows"]
        assert parallel["metadata"]["jobs"] == 2

    def test_run_accepts_jobs_and_cache_dir(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        code = main(
            [
                "run",
                "ablation_localized",
                "--no-files",
                "--jobs",
                "2",
                "--cache-dir",
                str(cache),
            ]
        )
        assert code == 0
        assert any(cache.rglob("*.json"))


class TestFig5Helpers:
    def test_nearest_neighbor_distances(self):
        dists = nearest_neighbor_distances([(0, 0), (1, 0), (3, 0)])
        assert dists == [1.0, 1.0, 2.0]

    def test_clustering_statistic_extremes(self):
        spread = [(0.1, 0.1), (0.9, 0.1), (0.1, 0.9), (0.9, 0.9)]
        clustered = [(0.5, 0.5), (0.5001, 0.5), (0.1, 0.1), (0.1001, 0.1)]
        assert clustering_statistic(spread, 1, 1.0) > clustering_statistic(clustered, 2, 1.0)
        assert clustering_statistic([(0.5, 0.5)], 1, 1.0) == 0.0
