"""Unit tests for Chebyshev centers (Definition 2 of the paper)."""

import math

import numpy as np
import pytest

from repro.geometry.chebyshev import (
    chebyshev_center_of_pieces,
    chebyshev_center_of_points,
    chebyshev_center_of_polygon,
    circumradius_from,
    farthest_point_distance,
)
from repro.geometry.primitives import distance


class TestChebyshevOfPoints:
    def test_square_corners(self):
        center, radius = chebyshev_center_of_points([(0, 0), (2, 0), (2, 2), (0, 2)])
        assert center == pytest.approx((1.0, 1.0))
        assert radius == pytest.approx(math.sqrt(2.0))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            chebyshev_center_of_points([])

    def test_single_point(self):
        center, radius = chebyshev_center_of_points([(3.0, -1.0)])
        assert center == (3.0, -1.0)
        assert radius == 0.0

    def test_center_minimises_max_distance(self):
        rng = np.random.default_rng(4)
        pts = [tuple(p) for p in rng.uniform(0, 1, size=(25, 2))]
        center, radius = chebyshev_center_of_points(pts)
        worst = max(distance(center, p) for p in pts)
        assert worst == pytest.approx(radius, rel=1e-9, abs=1e-9)
        # Any perturbed center has a larger worst-case distance.
        for delta in [(0.05, 0.0), (-0.05, 0.0), (0.0, 0.05), (0.0, -0.05)]:
            other = (center[0] + delta[0], center[1] + delta[1])
            assert max(distance(other, p) for p in pts) >= radius - 1e-9


class TestChebyshevOfPolygons:
    def test_polygon_center(self):
        center, radius = chebyshev_center_of_polygon([(0, 0), (1, 0), (1, 1), (0, 1)])
        assert center == pytest.approx((0.5, 0.5))
        assert radius == pytest.approx(math.sqrt(0.5))

    def test_polygon_empty_raises(self):
        with pytest.raises(ValueError):
            chebyshev_center_of_polygon([])

    def test_union_of_pieces(self):
        pieces = [
            [(0, 0), (1, 0), (1, 1), (0, 1)],
            [(1, 0), (2, 0), (2, 1), (1, 1)],
        ]
        center, radius = chebyshev_center_of_pieces(pieces)
        assert center == pytest.approx((1.0, 0.5))
        assert radius == pytest.approx(math.hypot(1.0, 0.5))

    def test_union_empty_raises(self):
        with pytest.raises(ValueError):
            chebyshev_center_of_pieces([])


class TestRadiusHelpers:
    def test_farthest_point_distance(self):
        assert farthest_point_distance((0, 0), [(1, 0), (0, 2), (-3, 0)]) == pytest.approx(3.0)

    def test_farthest_point_empty_raises(self):
        with pytest.raises(ValueError):
            farthest_point_distance((0, 0), [])

    def test_circumradius_from_origin(self):
        pieces = [[(1, 0), (2, 0), (2, 1)], [(0, 3), (1, 3), (0, 4)]]
        assert circumradius_from((0.0, 0.0), pieces) == pytest.approx(4.0)

    def test_circumradius_from_empty_is_zero(self):
        assert circumradius_from((0.0, 0.0), []) == 0.0
