"""Unit tests for circles and Welzl's smallest enclosing circle."""

import math

import numpy as np
import pytest

from repro.geometry.circle import Circle, bounding_circle_of_box, circle_from_2, circle_from_3
from repro.geometry.primitives import distance
from repro.geometry.welzl import welzl_disk


class TestCircle:
    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            Circle((0.0, 0.0), -1.0)

    def test_contains_interior_and_boundary(self):
        c = Circle((0.0, 0.0), 1.0)
        assert c.contains((0.5, 0.5))
        assert c.contains((1.0, 0.0))
        assert not c.contains((1.1, 0.0))

    def test_area(self):
        assert Circle((0, 0), 2.0).area() == pytest.approx(4.0 * math.pi)

    def test_intersects_circle(self):
        a = Circle((0.0, 0.0), 1.0)
        b = Circle((1.5, 0.0), 1.0)
        c = Circle((3.0, 0.0), 0.5)
        assert a.intersects_circle(b)
        assert not a.intersects_circle(c)


class TestCircleConstruction:
    def test_circle_from_2(self):
        c = circle_from_2((0.0, 0.0), (2.0, 0.0))
        assert c.center == pytest.approx((1.0, 0.0))
        assert c.radius == pytest.approx(1.0)

    def test_circle_from_3_right_triangle(self):
        c = circle_from_3((0.0, 0.0), (2.0, 0.0), (0.0, 2.0))
        assert c is not None
        assert c.center == pytest.approx((1.0, 1.0))
        assert c.radius == pytest.approx(math.sqrt(2.0))

    def test_circle_from_3_collinear_returns_none(self):
        assert circle_from_3((0, 0), (1, 1), (2, 2)) is None

    def test_bounding_circle_of_box(self):
        c = bounding_circle_of_box(0.0, 0.0, 2.0, 2.0)
        assert c.center == pytest.approx((1.0, 1.0))
        assert c.radius == pytest.approx(math.sqrt(2.0))

    def test_bounding_circle_of_degenerate_box_rejected(self):
        with pytest.raises(ValueError):
            bounding_circle_of_box(1.0, 0.0, 0.0, 2.0)


class TestWelzl:
    def test_empty_input(self):
        c = welzl_disk([])
        assert c.radius == 0.0

    def test_single_point(self):
        c = welzl_disk([(3.0, 4.0)])
        assert c.center == (3.0, 4.0)
        assert c.radius == 0.0

    def test_two_points(self):
        c = welzl_disk([(0.0, 0.0), (2.0, 0.0)])
        assert c.radius == pytest.approx(1.0)
        assert c.center == pytest.approx((1.0, 0.0))

    def test_square_corners(self):
        c = welzl_disk([(0, 0), (1, 0), (1, 1), (0, 1)])
        assert c.center == pytest.approx((0.5, 0.5))
        assert c.radius == pytest.approx(math.sqrt(0.5))

    def test_duplicate_points(self):
        c = welzl_disk([(1.0, 1.0)] * 5 + [(2.0, 1.0)] * 3)
        assert c.radius == pytest.approx(0.5)

    def test_collinear_points(self):
        c = welzl_disk([(0.0, 0.0), (1.0, 0.0), (4.0, 0.0), (2.0, 0.0)])
        assert c.radius == pytest.approx(2.0)
        assert c.center == pytest.approx((2.0, 0.0))

    def test_all_points_enclosed_random(self):
        rng = np.random.default_rng(7)
        pts = [tuple(p) for p in rng.normal(0, 1, size=(100, 2))]
        c = welzl_disk(pts)
        assert all(distance(c.center, p) <= c.radius + 1e-7 for p in pts)

    def test_minimality_against_brute_force(self):
        rng = np.random.default_rng(11)
        pts = [tuple(p) for p in rng.uniform(0, 1, size=(12, 2))]
        c = welzl_disk(pts)
        # Brute force: best circle through any pair or triple of points.
        best = math.inf
        for i in range(len(pts)):
            for j in range(i + 1, len(pts)):
                cand = circle_from_2(pts[i], pts[j])
                if all(cand.contains(p, eps=1e-7) for p in pts):
                    best = min(best, cand.radius)
                for l in range(j + 1, len(pts)):
                    cand3 = circle_from_3(pts[i], pts[j], pts[l])
                    if cand3 and all(cand3.contains(p, eps=1e-7) for p in pts):
                        best = min(best, cand3.radius)
        assert c.radius == pytest.approx(best, rel=1e-6)

    def test_deterministic_given_seed(self):
        rng = np.random.default_rng(3)
        pts = [tuple(p) for p in rng.uniform(0, 1, size=(50, 2))]
        c1 = welzl_disk(pts, seed=42)
        c2 = welzl_disk(pts, seed=42)
        assert c1.center == c2.center and c1.radius == c2.radius

    def test_independent_of_seed_value(self):
        rng = np.random.default_rng(5)
        pts = [tuple(p) for p in rng.uniform(0, 1, size=(40, 2))]
        c1 = welzl_disk(pts, seed=1)
        c2 = welzl_disk(pts, seed=99)
        assert c1.radius == pytest.approx(c2.radius, rel=1e-9)
