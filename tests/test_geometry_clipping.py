"""Unit tests for repro.geometry.clipping (half-planes and polygon clipping)."""

import math

import pytest

from repro.geometry.clipping import (
    HalfPlane,
    clip_polygon_halfplane,
    clip_polygon_polygon,
    halfplane_from_bisector,
    polygon_intersection_convex,
)
from repro.geometry.polygon import polygon_area

UNIT_SQUARE = [(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)]


class TestHalfPlane:
    def test_contains_inside_point(self):
        hp = HalfPlane(1.0, 0.0, 0.5)  # x <= 0.5
        assert hp.contains((0.2, 0.9))
        assert not hp.contains((0.8, 0.9))

    def test_value_sign(self):
        hp = HalfPlane(0.0, 1.0, 0.0)  # y <= 0
        assert hp.value((0.0, -1.0)) < 0
        assert hp.value((0.0, 2.0)) > 0

    def test_flipped_swaps_side(self):
        hp = HalfPlane(1.0, 0.0, 0.5)
        assert hp.flipped().contains((0.8, 0.0))
        assert not hp.flipped().contains((0.2, 0.0))

    def test_zero_normal_rejected(self):
        with pytest.raises(ValueError):
            HalfPlane(0.0, 0.0, 1.0)

    def test_boundary_intersection_midpoint(self):
        hp = HalfPlane(1.0, 0.0, 0.5)  # boundary x = 0.5
        p = hp.boundary_intersection((0.0, 0.0), (1.0, 0.0))
        assert p == pytest.approx((0.5, 0.0))


class TestBisector:
    def test_bisector_halfplane_contains_closer_point(self):
        hp = halfplane_from_bisector((0.0, 0.0), (2.0, 0.0))
        assert hp.contains((0.5, 0.3))
        assert not hp.contains((1.5, 0.3))

    def test_bisector_boundary_is_equidistant(self):
        hp = halfplane_from_bisector((0.0, 0.0), (2.0, 0.0))
        assert abs(hp.value((1.0, 5.0))) < 1e-9

    def test_coincident_sites_rejected(self):
        with pytest.raises(ValueError):
            halfplane_from_bisector((1.0, 1.0), (1.0, 1.0))


class TestClipPolygonHalfplane:
    def test_clip_square_in_half(self):
        hp = HalfPlane(1.0, 0.0, 0.5)  # keep x <= 0.5
        clipped = clip_polygon_halfplane(UNIT_SQUARE, hp)
        assert polygon_area(clipped) == pytest.approx(0.5)

    def test_clip_keeps_whole_polygon(self):
        hp = HalfPlane(1.0, 0.0, 5.0)
        clipped = clip_polygon_halfplane(UNIT_SQUARE, hp)
        assert polygon_area(clipped) == pytest.approx(1.0)

    def test_clip_removes_whole_polygon(self):
        hp = HalfPlane(1.0, 0.0, -1.0)  # x <= -1
        assert clip_polygon_halfplane(UNIT_SQUARE, hp) == []

    def test_clip_diagonal(self):
        hp = HalfPlane(1.0, 1.0, 1.0)  # x + y <= 1
        clipped = clip_polygon_halfplane(UNIT_SQUARE, hp)
        assert polygon_area(clipped) == pytest.approx(0.5)

    def test_clip_empty_input(self):
        hp = HalfPlane(1.0, 0.0, 0.5)
        assert clip_polygon_halfplane([], hp) == []

    def test_halfplane_and_complement_partition_area(self):
        hp = HalfPlane(2.0, -1.0, 0.3)
        a = polygon_area(clip_polygon_halfplane(UNIT_SQUARE, hp))
        b = polygon_area(clip_polygon_halfplane(UNIT_SQUARE, hp.flipped()))
        assert a + b == pytest.approx(1.0, abs=1e-9)


class TestClipPolygonPolygon:
    def test_intersection_of_overlapping_squares(self):
        other = [(0.5, 0.5), (1.5, 0.5), (1.5, 1.5), (0.5, 1.5)]
        result = clip_polygon_polygon(UNIT_SQUARE, other)
        assert polygon_area(result) == pytest.approx(0.25)

    def test_intersection_disjoint_is_empty(self):
        other = [(2.0, 2.0), (3.0, 2.0), (3.0, 3.0), (2.0, 3.0)]
        assert clip_polygon_polygon(UNIT_SQUARE, other) == []

    def test_intersection_contained(self):
        inner = [(0.25, 0.25), (0.75, 0.25), (0.75, 0.75), (0.25, 0.75)]
        result = clip_polygon_polygon(inner, UNIT_SQUARE)
        assert polygon_area(result) == pytest.approx(0.25)

    def test_polygon_intersection_convex_requires_convex_window(self):
        concave = [(0, 0), (2, 0), (2, 2), (1, 1), (0, 2)]
        with pytest.raises(ValueError):
            polygon_intersection_convex(UNIT_SQUARE, concave)

    def test_polygon_intersection_convex_result(self):
        tri = [(0.0, 0.0), (2.0, 0.0), (0.0, 2.0)]
        result = polygon_intersection_convex(UNIT_SQUARE, tri)
        # square ∩ triangle x+y<=2 cuts nothing but the (1,1) corner stays:
        assert polygon_area(result) == pytest.approx(1.0, abs=1e-9)
