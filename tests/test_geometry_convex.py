"""Unit tests for repro.geometry.convex (convex hulls and convexity tests)."""

import numpy as np
import pytest

from repro.geometry.convex import convex_hull, is_convex_polygon
from repro.geometry.polygon import point_in_polygon, signed_area


class TestConvexHull:
    def test_square_corners(self):
        pts = [(0, 0), (1, 0), (1, 1), (0, 1), (0.5, 0.5)]
        hull = convex_hull(pts)
        assert len(hull) == 4
        assert set(hull) == {(0, 0), (1, 0), (1, 1), (0, 1)}

    def test_hull_is_ccw(self):
        pts = [(0, 0), (2, 0), (2, 2), (0, 2), (1, 1), (0.5, 1.5)]
        hull = convex_hull(pts)
        assert signed_area(hull) > 0

    def test_collinear_input(self):
        pts = [(0, 0), (1, 1), (2, 2), (3, 3)]
        hull = convex_hull(pts)
        assert len(hull) == 2
        assert set(hull) == {(0, 0), (3, 3)}

    def test_duplicate_points(self):
        pts = [(0, 0), (0, 0), (1, 0), (1, 0), (0, 1)]
        hull = convex_hull(pts)
        assert len(hull) == 3

    def test_empty_and_single(self):
        assert convex_hull([]) == []
        assert convex_hull([(2.0, 3.0)]) == [(2.0, 3.0)]

    def test_all_points_inside_or_on_hull(self):
        rng = np.random.default_rng(0)
        pts = [tuple(p) for p in rng.uniform(0, 1, size=(60, 2))]
        hull = convex_hull(pts)
        assert is_convex_polygon(hull)
        for p in pts:
            assert point_in_polygon(p, hull, include_boundary=True, eps=1e-9)

    def test_hull_vertices_are_input_points(self):
        rng = np.random.default_rng(1)
        pts = [tuple(p) for p in rng.uniform(0, 1, size=(30, 2))]
        hull = convex_hull(pts)
        assert set(hull).issubset(set(pts))


class TestIsConvexPolygon:
    def test_square_is_convex(self):
        assert is_convex_polygon([(0, 0), (1, 0), (1, 1), (0, 1)])

    def test_clockwise_square_is_convex(self):
        assert is_convex_polygon([(0, 1), (1, 1), (1, 0), (0, 0)])

    def test_l_shape_is_not_convex(self):
        l_shape = [(0, 0), (2, 0), (2, 1), (1, 1), (1, 2), (0, 2)]
        assert not is_convex_polygon(l_shape)

    def test_triangle_with_collinear_vertex(self):
        assert is_convex_polygon([(0, 0), (1, 0), (2, 0), (1, 1)])

    def test_too_few_vertices(self):
        assert not is_convex_polygon([(0, 0), (1, 1)])
