"""Unit tests for repro.geometry.polygon."""

import math

import pytest

from repro.geometry.polygon import (
    bounding_box,
    ensure_ccw,
    point_in_polygon,
    point_on_polygon_boundary,
    polygon_area,
    polygon_centroid,
    polygon_diameter,
    polygon_edges,
    polygon_perimeter,
    signed_area,
)

UNIT_SQUARE = [(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)]
L_SHAPE = [(0, 0), (2, 0), (2, 1), (1, 1), (1, 2), (0, 2)]


class TestArea:
    def test_unit_square_area(self):
        assert polygon_area(UNIT_SQUARE) == pytest.approx(1.0)

    def test_signed_area_ccw_positive(self):
        assert signed_area(UNIT_SQUARE) > 0

    def test_signed_area_cw_negative(self):
        assert signed_area(list(reversed(UNIT_SQUARE))) < 0

    def test_l_shape_area(self):
        assert polygon_area(L_SHAPE) == pytest.approx(3.0)

    def test_degenerate_polygon_area_zero(self):
        assert polygon_area([(0, 0), (1, 1)]) == 0.0

    def test_triangle_area(self):
        assert polygon_area([(0, 0), (2, 0), (0, 2)]) == pytest.approx(2.0)


class TestOrientationNormalisation:
    def test_ensure_ccw_flips_clockwise(self):
        cw = list(reversed(UNIT_SQUARE))
        assert signed_area(ensure_ccw(cw)) > 0

    def test_ensure_ccw_keeps_ccw(self):
        assert ensure_ccw(UNIT_SQUARE) == UNIT_SQUARE


class TestCentroid:
    def test_square_centroid(self):
        cx, cy = polygon_centroid(UNIT_SQUARE)
        assert (cx, cy) == pytest.approx((0.5, 0.5))

    def test_triangle_centroid(self):
        cx, cy = polygon_centroid([(0, 0), (3, 0), (0, 3)])
        assert (cx, cy) == pytest.approx((1.0, 1.0))

    def test_centroid_independent_of_orientation(self):
        c1 = polygon_centroid(L_SHAPE)
        c2 = polygon_centroid(list(reversed(L_SHAPE)))
        assert c1 == pytest.approx(c2)

    def test_centroid_empty_raises(self):
        with pytest.raises(ValueError):
            polygon_centroid([])


class TestPerimeterEdgesBBox:
    def test_square_perimeter(self):
        assert polygon_perimeter(UNIT_SQUARE) == pytest.approx(4.0)

    def test_edges_count(self):
        assert len(list(polygon_edges(UNIT_SQUARE))) == 4

    def test_bounding_box(self):
        assert bounding_box(L_SHAPE) == (0, 0, 2, 2)

    def test_bounding_box_empty_raises(self):
        with pytest.raises(ValueError):
            bounding_box([])

    def test_diameter_of_square(self):
        assert polygon_diameter(UNIT_SQUARE) == pytest.approx(math.sqrt(2.0))


class TestPointInPolygon:
    def test_interior_point(self):
        assert point_in_polygon((0.5, 0.5), UNIT_SQUARE)

    def test_exterior_point(self):
        assert not point_in_polygon((1.5, 0.5), UNIT_SQUARE)

    def test_boundary_point_included_by_default(self):
        assert point_in_polygon((1.0, 0.5), UNIT_SQUARE)

    def test_boundary_point_excluded_when_requested(self):
        assert not point_in_polygon((1.0, 0.5), UNIT_SQUARE, include_boundary=False)

    def test_vertex_is_on_boundary(self):
        assert point_on_polygon_boundary((0.0, 0.0), UNIT_SQUARE)

    def test_concave_polygon_notch(self):
        # (1.5, 1.5) is in the notch of the L, i.e. outside.
        assert not point_in_polygon((1.5, 1.5), L_SHAPE)
        assert point_in_polygon((0.5, 1.5), L_SHAPE)

    def test_point_in_degenerate_polygon(self):
        assert not point_in_polygon((0.0, 0.0), [(0, 0), (1, 1)])
