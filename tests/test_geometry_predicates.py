"""Unit tests for repro.geometry.predicates."""

import pytest

from repro.geometry.predicates import (
    Orientation,
    collinear,
    in_circle,
    orientation,
    point_segment_distance,
    segments_intersect,
)


class TestOrientation:
    def test_counterclockwise(self):
        assert orientation((0, 0), (1, 0), (0, 1)) is Orientation.COUNTERCLOCKWISE

    def test_clockwise(self):
        assert orientation((0, 0), (0, 1), (1, 0)) is Orientation.CLOCKWISE

    def test_collinear_points(self):
        assert orientation((0, 0), (1, 1), (2, 2)) is Orientation.COLLINEAR
        assert collinear((0, 0), (1, 1), (2, 2))

    def test_not_collinear(self):
        assert not collinear((0, 0), (1, 1), (2, 2.5))


class TestInCircle:
    def test_point_inside_circle(self):
        # unit circle through (1,0), (0,1), (-1,0); origin is inside
        assert in_circle((1, 0), (0, 1), (-1, 0), (0, 0)) > 0

    def test_point_outside_circle(self):
        assert in_circle((1, 0), (0, 1), (-1, 0), (5, 5)) < 0

    def test_point_on_circle_near_zero(self):
        assert abs(in_circle((1, 0), (0, 1), (-1, 0), (0, -1))) < 1e-9


class TestPointSegmentDistance:
    def test_projection_inside_segment(self):
        assert point_segment_distance((0.5, 1.0), (0, 0), (1, 0)) == pytest.approx(1.0)

    def test_projection_beyond_endpoint(self):
        assert point_segment_distance((2.0, 0.0), (0, 0), (1, 0)) == pytest.approx(1.0)

    def test_degenerate_segment(self):
        assert point_segment_distance((3.0, 4.0), (0, 0), (0, 0)) == pytest.approx(5.0)

    def test_point_on_segment_is_zero(self):
        assert point_segment_distance((0.3, 0.0), (0, 0), (1, 0)) == pytest.approx(0.0)


class TestSegmentsIntersect:
    def test_crossing_segments(self):
        assert segments_intersect((0, 0), (1, 1), (0, 1), (1, 0))

    def test_disjoint_segments(self):
        assert not segments_intersect((0, 0), (1, 0), (0, 1), (1, 1))

    def test_touching_at_endpoint(self):
        assert segments_intersect((0, 0), (1, 0), (1, 0), (2, 1))

    def test_collinear_overlapping(self):
        assert segments_intersect((0, 0), (2, 0), (1, 0), (3, 0))

    def test_collinear_disjoint(self):
        assert not segments_intersect((0, 0), (1, 0), (2, 0), (3, 0))

    def test_parallel_non_intersecting(self):
        assert not segments_intersect((0, 0), (1, 0), (0, 0.5), (1, 0.5))
