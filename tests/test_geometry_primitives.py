"""Unit tests for repro.geometry.primitives."""

import math

import pytest

from repro.geometry.primitives import (
    add,
    almost_equal,
    as_point,
    centroid_of_points,
    cross,
    distance,
    distance_sq,
    dot,
    lerp,
    midpoint,
    norm,
    normalize,
    perpendicular,
    points_close,
    scale,
    sub,
)


class TestScalarHelpers:
    def test_almost_equal_true_within_eps(self):
        assert almost_equal(1.0, 1.0 + 1e-12)

    def test_almost_equal_false_outside_eps(self):
        assert not almost_equal(1.0, 1.001)

    def test_points_close(self):
        assert points_close((0.0, 0.0), (1e-12, -1e-12))
        assert not points_close((0.0, 0.0), (1e-3, 0.0))


class TestVectorAlgebra:
    def test_add_sub_inverse(self):
        p, q = (1.5, -2.0), (0.25, 3.0)
        assert points_close(sub(add(p, q), q), p)

    def test_scale(self):
        assert scale((2.0, -3.0), 0.5) == (1.0, -1.5)

    def test_dot_orthogonal_is_zero(self):
        assert dot((1.0, 0.0), (0.0, 5.0)) == 0.0

    def test_cross_sign(self):
        assert cross((1.0, 0.0), (0.0, 1.0)) > 0
        assert cross((0.0, 1.0), (1.0, 0.0)) < 0

    def test_norm_and_distance(self):
        assert norm((3.0, 4.0)) == pytest.approx(5.0)
        assert distance((0.0, 0.0), (3.0, 4.0)) == pytest.approx(5.0)

    def test_distance_sq_matches_distance(self):
        p, q = (1.0, 2.0), (-2.0, 6.0)
        assert distance_sq(p, q) == pytest.approx(distance(p, q) ** 2)

    def test_normalize_unit_length(self):
        v = normalize((3.0, 4.0))
        assert norm(v) == pytest.approx(1.0)

    def test_normalize_zero_raises(self):
        with pytest.raises(ValueError):
            normalize((0.0, 0.0))

    def test_perpendicular_is_orthogonal(self):
        v = (2.0, 5.0)
        assert dot(v, perpendicular(v)) == pytest.approx(0.0)

    def test_midpoint(self):
        assert midpoint((0.0, 0.0), (2.0, 4.0)) == (1.0, 2.0)

    def test_lerp_endpoints(self):
        p, q = (1.0, 1.0), (3.0, 5.0)
        assert points_close(lerp(p, q, 0.0), p)
        assert points_close(lerp(p, q, 1.0), q)

    def test_lerp_midway(self):
        assert lerp((0.0, 0.0), (2.0, 2.0), 0.5) == (1.0, 1.0)


class TestAggregates:
    def test_centroid_of_points(self):
        c = centroid_of_points([(0.0, 0.0), (2.0, 0.0), (2.0, 2.0), (0.0, 2.0)])
        assert points_close(c, (1.0, 1.0))

    def test_centroid_of_empty_raises(self):
        with pytest.raises(ValueError):
            centroid_of_points([])

    def test_as_point_from_list(self):
        assert as_point([1, 2]) == (1.0, 2.0)

    def test_as_point_rejects_short_input(self):
        with pytest.raises(ValueError):
            as_point([1.0])
