"""Unit tests for polygon triangulation and convex decomposition."""

import math

import pytest

from repro.geometry.convex import is_convex_polygon
from repro.geometry.polygon import point_in_polygon, polygon_area
from repro.geometry.triangulate import (
    convex_difference,
    decompose_with_holes,
    triangulate_polygon,
    triangulate_with_holes,
)

UNIT_SQUARE = [(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)]
L_SHAPE = [(0, 0), (2, 0), (2, 1), (1, 1), (1, 2), (0, 2)]


def total_area(pieces):
    return sum(polygon_area(p) for p in pieces)


class TestTriangulatePolygon:
    def test_triangle_passthrough(self):
        tri = [(0, 0), (1, 0), (0, 1)]
        assert triangulate_polygon(tri) == [tri]

    def test_square_two_triangles(self):
        tris = triangulate_polygon(UNIT_SQUARE)
        assert len(tris) == 2
        assert total_area(tris) == pytest.approx(1.0)

    def test_concave_polygon_area_preserved(self):
        tris = triangulate_polygon(L_SHAPE)
        assert total_area(tris) == pytest.approx(3.0)
        assert len(tris) == len(L_SHAPE) - 2

    def test_clockwise_input_handled(self):
        tris = triangulate_polygon(list(reversed(L_SHAPE)))
        assert total_area(tris) == pytest.approx(3.0)

    def test_collinear_vertices_tolerated(self):
        poly = [(0, 0), (0.5, 0.0), (1, 0), (1, 1), (0, 1)]
        tris = triangulate_polygon(poly)
        assert total_area(tris) == pytest.approx(1.0)

    def test_too_few_vertices_rejected(self):
        with pytest.raises(ValueError):
            triangulate_polygon([(0, 0), (1, 1)])

    def test_star_shaped_polygon(self):
        star = []
        for i in range(10):
            angle = math.pi * i / 5.0
            radius = 1.0 if i % 2 == 0 else 0.4
            star.append((radius * math.cos(angle), radius * math.sin(angle)))
        tris = triangulate_polygon(star)
        assert total_area(tris) == pytest.approx(polygon_area(star))


class TestConvexDifference:
    def test_disjoint_returns_original(self):
        far = [(5, 5), (6, 5), (6, 6), (5, 6)]
        pieces = convex_difference(UNIT_SQUARE, far)
        assert total_area(pieces) == pytest.approx(1.0)

    def test_fully_covered_returns_empty(self):
        big = [(-1, -1), (2, -1), (2, 2), (-1, 2)]
        assert convex_difference(UNIT_SQUARE, big) == []

    def test_partial_overlap_area(self):
        quarter = [(0.5, 0.5), (1.5, 0.5), (1.5, 1.5), (0.5, 1.5)]
        pieces = convex_difference(UNIT_SQUARE, quarter)
        assert total_area(pieces) == pytest.approx(0.75)
        assert all(is_convex_polygon(p) for p in pieces)

    def test_hole_in_middle(self):
        hole = [(0.4, 0.4), (0.6, 0.4), (0.6, 0.6), (0.4, 0.6)]
        pieces = convex_difference(UNIT_SQUARE, hole)
        assert total_area(pieces) == pytest.approx(1.0 - 0.04)
        # No piece overlaps the hole interior.
        for piece in pieces:
            assert not point_in_polygon((0.5, 0.5), piece, include_boundary=False)


class TestDecomposeWithHoles:
    def test_no_holes_matches_triangulation_area(self):
        pieces = decompose_with_holes(L_SHAPE)
        assert total_area(pieces) == pytest.approx(3.0)

    def test_single_hole(self):
        hole = [(0.25, 0.25), (0.75, 0.25), (0.75, 0.75), (0.25, 0.75)]
        pieces = decompose_with_holes(UNIT_SQUARE, [hole])
        assert total_area(pieces) == pytest.approx(0.75)
        assert all(is_convex_polygon(p) for p in pieces)

    def test_two_holes(self):
        holes = [
            [(0.1, 0.1), (0.3, 0.1), (0.3, 0.3), (0.1, 0.3)],
            [(0.6, 0.6), (0.9, 0.6), (0.9, 0.9), (0.6, 0.9)],
        ]
        pieces = decompose_with_holes(UNIT_SQUARE, holes)
        expected = 1.0 - 0.04 - 0.09
        assert total_area(pieces) == pytest.approx(expected)

    def test_hole_interior_not_covered(self):
        hole = [(0.4, 0.4), (0.6, 0.4), (0.6, 0.6), (0.4, 0.6)]
        pieces = decompose_with_holes(UNIT_SQUARE, [hole])
        assert not any(
            point_in_polygon((0.5, 0.5), piece, include_boundary=False) for piece in pieces
        )

    def test_triangulate_with_holes_produces_triangles(self):
        hole = [(0.4, 0.4), (0.6, 0.4), (0.6, 0.6), (0.4, 0.6)]
        tris = triangulate_with_holes(UNIT_SQUARE, [hole])
        assert all(len(t) == 3 for t in tris)
        assert total_area(tris) == pytest.approx(0.96)
