"""Golden-output regression test for the experiment runners.

The scenario/sweep refactor must not change the scientific output of any
runner: at a fixed seed and reduced scale every runner has to produce the
exact same CSV bytes and row values it produced before the port.  The
golden files under ``tests/golden/`` were generated from the pre-refactor
runners; regenerate them (only when an output change is intended and
understood) with::

    REPRO_REGEN_GOLDENS=1 PYTHONPATH=src python -m pytest tests/test_golden_outputs.py

``ablation_engine`` is excluded: its rows contain wall-clock timings.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

GOLDEN_DIR = Path(__file__).parent / "golden"
REGEN = os.environ.get("REPRO_REGEN_GOLDENS", "").strip() in {"1", "true", "yes"}

#: Every case is (runner import path, kwargs).  The parameters are the
#: small-but-representative sizes the unit tests already exercise, so a
#: full golden sweep stays CI-friendly.
GOLDEN_CASES = {
    "fig1_voronoi": (
        "repro.experiments.fig1_voronoi:run_fig1_voronoi",
        {"node_count": 14, "k_values": (1, 2), "seed_resolution": 35},
    ),
    "fig2_rings": (
        "repro.experiments.fig2_rings:run_fig2_rings",
        {"k_values": (1, 2, 4, 6)},
    ),
    "fig5_deployment": (
        "repro.experiments.fig5_deployment:run_fig5_deployment",
        {
            "node_count": 24,
            "k_values": (1, 2),
            "max_rounds": 60,
            "coverage_resolution": 40,
            "include_positions": True,
        },
    ),
    "fig6_convergence": (
        "repro.experiments.fig6_convergence:run_fig6_convergence",
        {"node_count": 20, "k_values": (1, 2), "max_rounds": 50},
    ),
    "fig7_energy": (
        "repro.experiments.fig7_energy:run_fig7_energy",
        {
            "node_counts": (15, 30),
            "k_values": (1, 2),
            "max_rounds": 40,
            "coverage_resolution": 35,
        },
    ),
    "fig8_obstacles": (
        "repro.experiments.fig8_obstacles:run_fig8_obstacles",
        {"node_count": 30, "k_values": (2,), "max_rounds": 50, "coverage_resolution": 45},
    ),
    "table1_minnode": (
        "repro.experiments.table1_minnode:run_table1_minnode",
        {"node_counts": (60,), "max_rounds": 40, "comm_range": 0.2},
    ),
    "table2_ammari": (
        "repro.experiments.table2_ammari:run_table2_ammari",
        {"node_count": 40, "k_values": (3,), "max_rounds": 40},
    ),
    "lifetime_comparison": (
        "repro.experiments.lifetime_comparison:run_lifetime_comparison",
        {"node_count": 18, "k": 2, "max_rounds": 40, "coverage_resolution": 35},
    ),
    "ablation_alpha": (
        "repro.experiments.ablations:run_alpha_ablation",
        {"alphas": (0.5, 1.0), "node_count": 14, "k": 1, "max_rounds": 120},
    ),
    "ablation_localized": (
        "repro.experiments.ablations:run_localized_ablation",
        {"node_count": 16, "k_values": (1, 2)},
    ),
    "ablation_protocol_overhead": (
        "repro.experiments.ablations:run_protocol_overhead",
        {"node_count": 12, "k": 1, "max_rounds": 20},
    ),
}


def _load_runner(path: str):
    module_name, func_name = path.split(":")
    module = __import__(module_name, fromlist=[func_name])
    return getattr(module, func_name)


def _rows_json(result) -> str:
    return json.dumps(result.rows, indent=2, default=float, sort_keys=True)


@pytest.mark.parametrize("name", sorted(GOLDEN_CASES))
def test_runner_matches_golden(name, tmp_path):
    runner_path, kwargs = GOLDEN_CASES[name]
    runner = _load_runner(runner_path)
    result = runner(**kwargs)
    csv_text = (result.to_csv(tmp_path / f"{name}.csv")).read_text()
    rows_text = _rows_json(result)

    csv_golden = GOLDEN_DIR / f"{name}.csv"
    rows_golden = GOLDEN_DIR / f"{name}.rows.json"
    meta_golden = GOLDEN_DIR / f"{name}.meta.json"

    if REGEN:
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        csv_golden.write_text(csv_text)
        rows_golden.write_text(rows_text)
        meta_golden.write_text(
            json.dumps(result.metadata, indent=2, default=float, sort_keys=True)
        )
        pytest.skip("regenerated golden files")

    assert csv_golden.exists(), (
        f"missing golden files for {name}; run with REPRO_REGEN_GOLDENS=1"
    )
    assert csv_text == csv_golden.read_text(), f"{name}: CSV output changed"
    assert rows_text == rows_golden.read_text(), f"{name}: row values changed"

    # Metadata may gain keys across refactors (e.g. engine/cache info) but
    # every pre-existing key must keep its exact value.
    golden_meta = json.loads(meta_golden.read_text())
    new_meta = json.loads(json.dumps(result.metadata, default=float))
    for key, value in golden_meta.items():
        assert key in new_meta, f"{name}: metadata key {key!r} disappeared"
        assert new_meta[key] == value, f"{name}: metadata[{key!r}] changed"
