"""Integration tests: the paper's claims, end to end, across module boundaries."""

import math

import numpy as np
import pytest

from repro.analysis.connectivity import connectivity_report
from repro.analysis.coverage import evaluate_coverage, is_k_covered
from repro.analysis.energy import energy_report
from repro.analysis.fairness import min_max_ratio
from repro.analysis.traces import is_monotone_nonincreasing
from repro.api import Simulation, deploy
from repro.core.config import LaacadConfig
from repro.geometry.primitives import distance
from repro.network.network import SensorNetwork
from repro.regions.shapes import figure8_region_two, unit_square
from repro.runtime.failures import FailureInjector


class TestPaperClaimKCoverage:
    """Definition 1 + Proposition 4: LAACAD's final deployment is k-covered."""

    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_corner_start_reaches_k_coverage(self, k):
        region = unit_square()
        network = SensorNetwork.from_corner_cluster(
            region, 25, cluster_fraction=0.2, comm_range=0.3, rng=np.random.default_rng(k)
        )
        config = LaacadConfig(k=k, alpha=1.0, epsilon=2e-3, max_rounds=100)
        result = Simulation(network=network, config=config).run()
        report = evaluate_coverage(
            result.final_positions, result.sensing_ranges, region, k, resolution=50
        )
        assert report.fully_covered
        assert report.min_coverage >= k

    def test_obstructed_region_reaches_k_coverage(self):
        region = figure8_region_two()
        network = SensorNetwork.from_random(
            region, 30, comm_range=0.3, rng=np.random.default_rng(1)
        )
        config = LaacadConfig(k=2, alpha=1.0, epsilon=2e-3, max_rounds=80)
        result = Simulation(network=network, config=config).run()
        assert is_k_covered(
            result.final_positions, result.sensing_ranges, region, 2, resolution=60
        )
        assert all(region.contains(p) for p in result.final_positions)


class TestPaperClaimConvergence:
    """Proposition 4 / Corollary 1: convergence and monotone max radius."""

    @pytest.mark.parametrize("alpha", [0.5, 1.0])
    def test_converges_for_any_alpha(self, alpha):
        region = unit_square()
        network = SensorNetwork.from_random(
            region, 15, comm_range=0.3, rng=np.random.default_rng(2)
        )
        config = LaacadConfig(k=2, alpha=alpha, epsilon=3e-3, max_rounds=200)
        result = Simulation(network=network, config=config).run()
        assert result.converged

    def test_max_range_monotone_alpha_one(self):
        region = unit_square()
        network = SensorNetwork.from_corner_cluster(
            region, 20, comm_range=0.3, rng=np.random.default_rng(3)
        )
        config = LaacadConfig(k=3, alpha=1.0, epsilon=2e-3, max_rounds=100)
        result = Simulation(network=network, config=config).run()
        trace = [s.max_range_from_position for s in result.history]
        assert is_monotone_nonincreasing(trace, tolerance=1e-6)


class TestPaperClaimLoadBalance:
    """Sec. V-A / V-B: max ≈ min sensing range; max load scales like k/N."""

    def test_ranges_nearly_equal_for_larger_k(self):
        region = unit_square()
        network = SensorNetwork.from_random(
            region, 24, comm_range=0.3, rng=np.random.default_rng(4)
        )
        config = LaacadConfig(k=3, alpha=1.0, epsilon=1e-3, max_rounds=120)
        result = Simulation(network=network, config=config).run()
        assert min_max_ratio(result.sensing_ranges) > 0.7

    def test_max_load_ratio_tracks_k_ratio(self):
        region = unit_square()
        loads = {}
        for k in (1, 2):
            network = SensorNetwork.from_random(
                region, 25, comm_range=0.3, rng=np.random.default_rng(5)
            )
            config = LaacadConfig(k=k, alpha=1.0, epsilon=2e-3, max_rounds=80)
            result = Simulation(network=network, config=config).run()
            loads[k] = energy_report(result.sensing_ranges).max_load
        ratio = loads[2] / loads[1]
        # The paper observes the ratio of max loads ≈ k1/k2 = 2; allow slack.
        assert 1.3 < ratio < 3.0

    def test_more_nodes_reduce_max_load(self):
        region = unit_square()
        loads = {}
        for n in (12, 30):
            network = SensorNetwork.from_random(
                region, n, comm_range=0.3, rng=np.random.default_rng(6)
            )
            config = LaacadConfig(k=2, alpha=1.0, epsilon=2e-3, max_rounds=80)
            result = Simulation(network=network, config=config).run()
            loads[n] = energy_report(result.sensing_ranges).max_load
        assert loads[30] < loads[12]


class TestPaperClaimConnectivity:
    """Sec. IV-C: a k-covered deployment (k >= 2, gamma >= r) is connected."""

    def test_connectivity_of_2_covered_deployment(self):
        region = unit_square()
        network = SensorNetwork.from_random(
            region, 30, comm_range=0.3, rng=np.random.default_rng(7)
        )
        k = 2
        config = LaacadConfig(k=k, alpha=1.0, epsilon=2e-3, max_rounds=80)
        result = Simulation(network=network, config=config).run()
        r_star = max(result.sensing_ranges)

        # With gamma = R*: every node's own position is k-covered, and the
        # k-1 other coverers are within their ranges (<= R* = gamma) of it,
        # so the minimum degree is at least k - 1.
        report_same = connectivity_report(result.final_positions, r_star)
        assert report_same.min_degree >= k - 1

        # With gamma = 2 R*: adjacent dominating regions share boundary
        # points, so their nodes are within 2 R* of each other and the
        # whole communication graph is connected.
        report_double = connectivity_report(result.final_positions, 2.0 * r_star)
        assert report_double.connected


class TestDistributedEquivalence:
    """The message-passing protocol and the centralized driver agree (loss-free)."""

    def test_same_trajectories_and_ranges(self):
        region = unit_square()
        positions = region.random_points(14, rng=np.random.default_rng(8))
        config = LaacadConfig(k=2, alpha=1.0, epsilon=2e-3, max_rounds=30)

        central = deploy(region, positions, config, comm_range=0.35)

        network = SensorNetwork(region, positions, comm_range=0.35)
        distributed = Simulation(
            network=network, config=config, kind="distributed"
        ).run()

        assert distributed.communication.messages > 0
        assert distributed.rounds_executed == central.rounds_executed
        assert distributed.max_sensing_range == pytest.approx(
            central.max_sensing_range, rel=1e-6
        )
        for a, b in zip(central.final_positions, distributed.final_positions):
            assert distance(a, b) < 1e-6


class TestFaultTolerance:
    """The k-coverage motivation: losing a node leaves (k-1)-coverage intact."""

    def test_single_failure_preserves_k_minus_1_coverage(self):
        region = unit_square()
        network = SensorNetwork.from_random(
            region, 22, comm_range=0.3, rng=np.random.default_rng(9)
        )
        config = LaacadConfig(k=3, alpha=1.0, epsilon=2e-3, max_rounds=80)
        result = Simulation(network=network, config=config).run()
        # Remove the node with the largest dominating region (worst case).
        victim = int(np.argmax(result.sensing_ranges))
        positions = [p for i, p in enumerate(result.final_positions) if i != victim]
        ranges = [r for i, r in enumerate(result.sensing_ranges) if i != victim]
        assert is_k_covered(positions, ranges, region, 2, resolution=50)

    def test_rerun_after_failures_restores_coverage(self):
        region = unit_square()
        network = SensorNetwork.from_random(
            region, 20, comm_range=0.35, rng=np.random.default_rng(10)
        )
        config = LaacadConfig(k=2, alpha=1.0, epsilon=2e-3, max_rounds=60)
        injector = FailureInjector(scheduled={5: [0, 1, 2]})
        result = Simulation(
            network=network,
            config=config,
            kind="distributed",
            failure_injector=injector,
        ).run()
        alive_positions = [n.position for n in network.alive_nodes()]
        alive_ranges = [n.sensing_range for n in network.alive_nodes()]
        assert is_k_covered(alive_positions, alive_ranges, region, 2, resolution=45)


class TestEvenClustering:
    """Sec. V-A: for k >= 2 the converged nodes gather in groups of ~k."""

    def test_k2_nodes_cluster_more_than_k1(self):
        """For the same start, the k=2 deployment has much closer nearest neighbours than k=1.

        LAACAD from a random start may settle in local minima where the
        pairing is only partial, so the robust check is relative: the
        mean nearest-neighbour distance for k = 2 must be clearly smaller
        than for k = 1 (where nodes spread out evenly).
        """
        region = unit_square()
        positions = region.random_points(24, rng=np.random.default_rng(11))

        def mean_nearest(k):
            config = LaacadConfig(k=k, alpha=1.0, epsilon=1e-3, max_rounds=120)
            result = deploy(region, positions, config, comm_range=0.3)
            values = []
            for i, p in enumerate(result.final_positions):
                values.append(
                    min(
                        distance(p, q)
                        for j, q in enumerate(result.final_positions)
                        if j != i
                    )
                )
            return sum(values) / len(values)

        assert mean_nearest(2) < 0.8 * mean_nearest(1)

    def test_three_nodes_three_coverage_colocate(self):
        """The extreme example of Sec. IV-C: 3 nodes, 3-coverage -> co-location."""
        region = unit_square()
        positions = [(0.2, 0.2), (0.8, 0.3), (0.5, 0.8)]
        config = LaacadConfig(k=3, alpha=1.0, epsilon=1e-4, max_rounds=120)
        result = deploy(region, positions, config, comm_range=0.5)
        spread = max(
            distance(a, b) for a in result.final_positions for b in result.final_positions
        )
        assert spread < 0.05
        # And they all sit at (or very near) the square's Chebyshev center.
        for p in result.final_positions:
            assert distance(p, (0.5, 0.5)) < 0.05
