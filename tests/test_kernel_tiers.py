"""Kernel-tier seam tests: env resolution, oracles, and piece emission.

The sparse tier's two bandwidth-bound kernels live behind a seam in
``repro.engine.jit_kernels`` with a NumPy reference implementation (the
equivalence oracle, always present) and an optional numba-compiled
tier.  These tests pin the contract from DESIGN.md "Kernel tiers":

* ``REPRO_KERNELS`` resolves to ``numpy``/``jit`` with clear errors for
  invalid values and for ``jit`` without numba;
* the loop-form kernel bodies (the exact code numba compiles) agree
  with the NumPy implementations — bitwise for half-plane values,
  decision-exactly for closer counts;
* :class:`repro.engine.pieces.PieceAccumulator` reproduces the historic
  owner-then-discovery piece order of the ``_stash_pieces`` loop it
  replaced.

The JIT-tier tests run only when numba is importable; CI exercises both
legs (see ``.github/workflows/ci.yml``).
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.engine.jit_kernels as jk
from repro.engine.jit_kernels import (
    KERNELS_ENV,
    _classify_first_events_loops,
    _clip_crossing_loops,
    _closer_counts_loops,
    _compress_rings_loops,
    _halfplane_minmax_loops,
    classify_first_events,
    clip_crossing_pieces,
    closer_counts,
    compress_rings,
    halfplane_minmax,
    kernel_tier,
    numba_available,
    ragged_indices,
    segment_ids,
)
from repro.engine.kernels import (
    KERNEL_THREADS_ENV,
    kernel_threads,
    plan_chunks,
    run_chunk_tasks,
    split_ranges,
)
from repro.engine.pieces import PieceAccumulator

#: The worker counts every seam determinism test sweeps: serial (the
#: bitwise-anchored path), an even split, and a prime that leaves a
#: ragged tail range.
THREAD_COUNTS = pytest.mark.parametrize("threads", [1, 2, 7])


# ----------------------------------------------------------------------
# Ragged fixtures
# ----------------------------------------------------------------------
def _ragged_pieces(rng, n_pieces=40, max_verts=9):
    counts = rng.integers(1, max_verts, size=n_pieces).astype(np.int64)
    starts = (np.cumsum(counts) - counts).astype(np.int64)
    total = int(counts.sum())
    vx = rng.uniform(-3.0, 3.0, size=total)
    vy = rng.uniform(-3.0, 3.0, size=total)
    ca = rng.uniform(-2.0, 2.0, size=n_pieces)
    cb = rng.uniform(-2.0, 2.0, size=n_pieces)
    cc = rng.uniform(-2.0, 2.0, size=n_pieces)
    return vx, vy, starts, counts, ca, cb, cc


def _counting_problem(rng, n_rows=25, n_samples=16, max_known=30):
    counts = rng.integers(0, max_known, size=n_rows).astype(np.int64)
    offsets = (np.cumsum(counts) - counts).astype(np.int64)
    total = int(counts.sum())
    kx = rng.uniform(0.0, 1.0, size=total)
    ky = rng.uniform(0.0, 1.0, size=total)
    sample_x = rng.uniform(0.0, 1.0, size=(n_rows, n_samples))
    sample_y = rng.uniform(0.0, 1.0, size=(n_rows, n_samples))
    threshold_sq = rng.uniform(0.0, 0.05, size=(n_rows, n_samples))
    return kx, ky, offsets, counts, sample_x, sample_y, threshold_sq


def _classify_problem(rng, n_pieces=60, max_verts=8, max_blk=6):
    """Pieces plus a contiguous competitor-lookahead block per piece."""
    counts = rng.integers(3, max_verts, size=n_pieces).astype(np.int64)
    starts = (np.cumsum(counts) - counts).astype(np.int64)
    total = int(counts.sum())
    vx = rng.uniform(-2.0, 2.0, size=total)
    vy = rng.uniform(-2.0, 2.0, size=total)
    nblk = rng.integers(1, max_blk, size=n_pieces).astype(np.int64)
    centry = (np.cumsum(nblk) - nblk).astype(np.int64)
    ncomp = int(nblk.sum())
    ca = rng.uniform(-1.5, 1.5, size=ncomp)
    cb = rng.uniform(-1.5, 1.5, size=ncomp)
    cc = rng.uniform(-1.5, 1.5, size=ncomp)
    sep = rng.random(ncomp) < 0.8
    return vx, vy, starts, counts, centry, nblk, ca, cb, cc, sep


def _clip_loops_oracle(pool_x, pool_y, pstart, pc, ca, cb, cc, want, eps):
    """Run the scalar clip body through slot buffers and compact."""
    from repro.geometry.primitives import EPS

    slot_start = (2 * (np.cumsum(pc) - pc)).astype(np.int64)
    cap = int(2 * pc.sum())
    clo_x = np.empty(cap)
    clo_y = np.empty(cap)
    far_x = np.empty(cap)
    far_y = np.empty(cap)
    clo_n = np.zeros(pc.shape[0], dtype=np.int64)
    far_n = np.zeros(pc.shape[0], dtype=np.int64)
    _clip_crossing_loops(
        pool_x, pool_y, pstart, pc, ca, cb, cc, want, eps, EPS * EPS,
        slot_start, clo_x, clo_y, clo_n, far_x, far_y, far_n,
    )
    cidx = ragged_indices(slot_start, clo_n)
    fidx = ragged_indices(slot_start, far_n)
    return clo_x[cidx], clo_y[cidx], clo_n, far_x[fidx], far_y[fidx], far_n


@pytest.fixture
def rng():
    return np.random.default_rng(20260808)


# ----------------------------------------------------------------------
# REPRO_KERNELS resolution
# ----------------------------------------------------------------------
class TestTierResolution:
    def test_default_is_auto(self, monkeypatch):
        monkeypatch.delenv(KERNELS_ENV, raising=False)
        assert kernel_tier() == ("jit" if numba_available() else "numpy")

    def test_blank_value_means_auto(self, monkeypatch):
        monkeypatch.setenv(KERNELS_ENV, "  ")
        assert kernel_tier() == ("jit" if numba_available() else "numpy")

    def test_numpy_forced(self, monkeypatch):
        monkeypatch.setenv(KERNELS_ENV, "numpy")
        assert kernel_tier() == "numpy"

    def test_case_insensitive(self, monkeypatch):
        monkeypatch.setenv(KERNELS_ENV, " NumPy ")
        assert kernel_tier() == "numpy"

    def test_invalid_value_rejected(self, monkeypatch):
        monkeypatch.setenv(KERNELS_ENV, "fortran")
        with pytest.raises(ValueError, match="fortran"):
            kernel_tier()

    def test_jit_without_numba_raises(self, monkeypatch):
        monkeypatch.setenv(KERNELS_ENV, "jit")
        monkeypatch.setattr(jk, "_NUMBA_OK", False)
        with pytest.raises(RuntimeError, match="numba"):
            kernel_tier()

    def test_auto_without_numba_falls_back(self, monkeypatch):
        monkeypatch.setenv(KERNELS_ENV, "auto")
        monkeypatch.setattr(jk, "_NUMBA_OK", False)
        assert kernel_tier() == "numpy"

    def test_auto_with_numba_selects_jit(self, monkeypatch):
        monkeypatch.setenv(KERNELS_ENV, "auto")
        monkeypatch.setattr(jk, "_NUMBA_OK", True)
        assert kernel_tier() == "jit"


# ----------------------------------------------------------------------
# Loop-form bodies as dependency-free oracles of the NumPy seam
# ----------------------------------------------------------------------
class TestLoopFormOracles:
    def test_halfplane_loops_bitwise_match_numpy(self, rng, monkeypatch):
        monkeypatch.setenv(KERNELS_ENV, "numpy")
        vx, vy, starts, counts, ca, cb, cc = _ragged_pieces(rng)
        pmax, pmin = halfplane_minmax(vx, vy, starts, counts, ca, cb, cc)
        lmax = np.empty_like(pmax)
        lmin = np.empty_like(pmin)
        _halfplane_minmax_loops(vx, vy, starts, counts, ca, cb, cc, lmax, lmin)
        # Bitwise: the loop body uses the identical IEEE expression.
        np.testing.assert_array_equal(pmax, lmax)
        np.testing.assert_array_equal(pmin, lmin)

    @pytest.mark.parametrize("cap", [1, 4, 16, 1000])
    def test_closer_counts_decisions_match_loops(self, rng, cap, monkeypatch):
        monkeypatch.setenv(KERNELS_ENV, "numpy")
        k = 2
        kx, ky, offsets, counts, sx, sy, tsq = _counting_problem(rng)
        out_np = closer_counts(kx, ky, offsets, counts, sx, sy, tsq, cap, k)
        out_loops = np.zeros_like(out_np)
        _closer_counts_loops(
            kx, ky, offsets, counts, sx, sy, tsq, cap, k, out_loops
        )
        # Counts themselves are only decision-equivalent across cap
        # values, but for the *same* cap the two-stage schedules agree
        # exactly, so the matrices must be equal.
        np.testing.assert_array_equal(out_np, out_loops)

    @pytest.mark.parametrize("cap", [1, 3, 7, 64])
    def test_closer_counts_decisions_match_brute_force(self, rng, cap):
        k = 2
        kx, ky, offsets, counts, sx, sy, tsq = _counting_problem(rng)
        out = closer_counts(kx, ky, offsets, counts, sx, sy, tsq, cap, k)
        n_rows, n_samples = sx.shape
        full = np.zeros((n_rows, n_samples), dtype=np.int64)
        for r in range(n_rows):
            for s in range(n_samples):
                for j in range(offsets[r], offsets[r] + counts[r]):
                    dx = kx[j] - sx[r, s]
                    dy = ky[j] - sy[r, s]
                    if dx * dx + dy * dy < tsq[r, s]:
                        full[r, s] += 1
        # Decision contract: ``count >= k`` agrees everywhere with the
        # exhaustive count, for any stage-1 budget.
        np.testing.assert_array_equal(out >= k, full >= k)

    def test_empty_inputs(self):
        empty_i = np.zeros(0, dtype=np.int64)
        empty_f = np.zeros(0)
        pmax, pmin = halfplane_minmax(
            empty_f, empty_f, empty_i, empty_i, empty_f, empty_f, empty_f
        )
        assert pmax.shape == (0,) and pmin.shape == (0,)
        out = closer_counts(
            empty_f, empty_f, empty_i, empty_i,
            np.zeros((0, 8)), np.zeros((0, 8)), np.zeros((0, 8)), 4, 2,
        )
        assert out.shape == (0, 8)


# ----------------------------------------------------------------------
# Clip-pass seams: classification, fused two-sided clip, compression
# ----------------------------------------------------------------------
EPS = 1e-9


class TestClassifyFirstEvents:
    @THREAD_COUNTS
    def test_loops_bitwise_match_numpy_seam(self, rng, threads, monkeypatch):
        monkeypatch.setenv(KERNELS_ENV, "numpy")
        monkeypatch.setenv(KERNEL_THREADS_ENV, str(threads))
        # Big enough that the numpy seam genuinely splits into multiple
        # worker ranges (min_per_worker=2048) when threads > 1.
        vx, vy, starts, counts, centry, nblk, ca, cb, cc, sep = (
            _classify_problem(rng, n_pieces=4500)
        )
        first, kind = classify_first_events(
            vx, vy, starts, counts, centry, nblk, ca, cb, cc, sep, EPS
        )
        lf = np.empty_like(first)
        lk = np.empty_like(kind)
        _classify_first_events_loops(
            vx, vy, starts, counts, centry, nblk, ca, cb, cc, sep, EPS, lf, lk
        )
        np.testing.assert_array_equal(first, lf)
        np.testing.assert_array_equal(kind, lk)

    def test_zero_event_pass(self, rng, monkeypatch):
        # Every bisector far on the negative side: the whole block is
        # untouched, so no event fires — first_evt parks at nblk.
        monkeypatch.setenv(KERNELS_ENV, "numpy")
        vx, vy, starts, counts, centry, nblk, ca, cb, cc, sep = (
            _classify_problem(rng)
        )
        cc = np.full_like(cc, 100.0)  # value = a*x + b*y - 100 << -eps
        first, kind = classify_first_events(
            vx, vy, starts, counts, centry, nblk, ca, cb, cc, sep, EPS
        )
        np.testing.assert_array_equal(kind, 0)
        np.testing.assert_array_equal(first, nblk)

    def test_all_out_first_event(self, rng, monkeypatch):
        # Every separated bisector strictly positive over every vertex:
        # the first separated block entry is an all-out (kind 1) event.
        monkeypatch.setenv(KERNELS_ENV, "numpy")
        vx, vy, starts, counts, centry, nblk, ca, cb, cc, sep = (
            _classify_problem(rng)
        )
        ca = np.ones_like(ca)
        cb = np.zeros_like(cb)
        cc = np.full_like(cc, -100.0)  # value = x + 100 >> eps
        first, kind = classify_first_events(
            vx, vy, starts, counts, centry, nblk, ca, cb, cc, sep, EPS
        )
        for p in range(starts.shape[0]):
            blk_sep = sep[centry[p] : centry[p] + nblk[p]]
            if blk_sep.any():
                assert kind[p] == 1
                assert first[p] == int(np.argmax(blk_sep))
            else:
                assert kind[p] == 0
                assert first[p] == nblk[p]

    def test_non_separated_competitors_skipped(self, rng, monkeypatch):
        monkeypatch.setenv(KERNELS_ENV, "numpy")
        vx, vy, starts, counts, centry, nblk, ca, cb, cc, sep = (
            _classify_problem(rng)
        )
        sep = np.zeros_like(sep)
        first, kind = classify_first_events(
            vx, vy, starts, counts, centry, nblk, ca, cb, cc, sep, EPS
        )
        np.testing.assert_array_equal(kind, 0)
        np.testing.assert_array_equal(first, nblk)

    def test_empty_input(self):
        e_f = np.zeros(0)
        e_i = np.zeros(0, dtype=np.int64)
        first, kind = classify_first_events(
            e_f, e_f, e_i, e_i, e_i, e_i, e_f, e_f, e_f,
            np.zeros(0, dtype=bool), EPS,
        )
        assert first.shape == (0,) and kind.shape == (0,)


class TestClipCrossingPieces:
    def _random_rings(self, rng, n_pieces=50):
        counts = rng.integers(3, 9, size=n_pieces).astype(np.int64)
        starts = (np.cumsum(counts) - counts).astype(np.int64)
        total = int(counts.sum())
        # Rings scattered around distinct centers so the random
        # bisectors produce a healthy mix of crossing/one-sided cases.
        centers = rng.uniform(-3.0, 3.0, size=(n_pieces, 2))
        seg = np.repeat(np.arange(n_pieces), counts)
        vx = centers[seg, 0] + rng.uniform(-0.5, 0.5, size=total)
        vy = centers[seg, 1] + rng.uniform(-0.5, 0.5, size=total)
        ca = rng.uniform(-1.0, 1.0, size=n_pieces)
        cb = rng.uniform(-1.0, 1.0, size=n_pieces)
        cc = rng.uniform(-1.0, 1.0, size=n_pieces)
        want = rng.random(n_pieces) < 0.7
        return vx, vy, starts, counts, ca, cb, cc, want

    @THREAD_COUNTS
    def test_loops_bitwise_match_numpy_seam(self, rng, threads, monkeypatch):
        monkeypatch.setenv(KERNELS_ENV, "numpy")
        monkeypatch.setenv(KERNEL_THREADS_ENV, str(threads))
        # 1200 pieces > 2 * min_per_worker(512): the seam splits into
        # multiple chunk-ordered ranges when threads > 1.
        vx, vy, starts, counts, ca, cb, cc, want = self._random_rings(
            rng, n_pieces=1200
        )
        got = clip_crossing_pieces(
            vx, vy, starts, counts, ca, cb, cc, want, EPS
        )
        ref = _clip_loops_oracle(vx, vy, starts, counts, ca, cb, cc, want, EPS)
        for g, r in zip(got, ref):
            np.testing.assert_array_equal(g, r)

    def test_zero_crossing_pass_keeps_piece_whole(self, monkeypatch):
        # Bisector x = 10 far right of a unit triangle: the closer side
        # is the untouched ring, the farther side is empty.
        monkeypatch.setenv(KERNELS_ENV, "numpy")
        vx = np.asarray([0.0, 1.0, 0.0])
        vy = np.asarray([0.0, 0.0, 1.0])
        starts = np.asarray([0], dtype=np.int64)
        counts = np.asarray([3], dtype=np.int64)
        one = np.ones(1)
        clo_x, clo_y, clo_n, far_x, far_y, far_n = clip_crossing_pieces(
            vx, vy, starts, counts, one, np.zeros(1), np.full(1, 10.0),
            np.ones(1, dtype=bool), EPS,
        )
        np.testing.assert_array_equal(clo_n, [3])
        np.testing.assert_array_equal(clo_x, vx)
        np.testing.assert_array_equal(clo_y, vy)
        np.testing.assert_array_equal(far_n, [0])
        assert far_x.size == 0 and far_y.size == 0

    def test_all_out_piece_moves_to_farther_side(self, monkeypatch):
        # Bisector x = -10 far left: the closer child vanishes and the
        # farther child is the untouched ring.
        monkeypatch.setenv(KERNELS_ENV, "numpy")
        vx = np.asarray([0.0, 1.0, 0.0])
        vy = np.asarray([0.0, 0.0, 1.0])
        starts = np.asarray([0], dtype=np.int64)
        counts = np.asarray([3], dtype=np.int64)
        clo_x, clo_y, clo_n, far_x, far_y, far_n = clip_crossing_pieces(
            vx, vy, starts, counts, np.ones(1), np.zeros(1),
            np.full(1, -10.0), np.ones(1, dtype=bool), EPS,
        )
        np.testing.assert_array_equal(clo_n, [0])
        assert clo_x.size == 0
        np.testing.assert_array_equal(far_n, [3])
        np.testing.assert_array_equal(far_x, vx)

    def test_want_farther_false_discards_far_child(self, rng, monkeypatch):
        monkeypatch.setenv(KERNELS_ENV, "numpy")
        vx, vy, starts, counts, ca, cb, cc, _ = self._random_rings(rng)
        none = np.zeros(counts.shape[0], dtype=bool)
        _, _, _, far_x, far_y, far_n = clip_crossing_pieces(
            vx, vy, starts, counts, ca, cb, cc, none, EPS
        )
        np.testing.assert_array_equal(far_n, 0)
        assert far_x.size == 0 and far_y.size == 0

    def test_clip_through_vertex_collapses_child(self, monkeypatch):
        # Bisector x <= 0 grazes the triangle's left edge: the closer
        # child degenerates to that edge (2 vertices after dedupe),
        # which the engine's area filter later discards.
        monkeypatch.setenv(KERNELS_ENV, "numpy")
        vx = np.asarray([0.0, 1.0, 0.0])
        vy = np.asarray([0.0, 0.0, 1.0])
        starts = np.asarray([0], dtype=np.int64)
        counts = np.asarray([3], dtype=np.int64)
        want = np.ones(1, dtype=bool)
        got = clip_crossing_pieces(
            vx, vy, starts, counts, np.ones(1), np.zeros(1), np.zeros(1),
            want, EPS,
        )
        ref = _clip_loops_oracle(
            vx, vy, starts, counts, np.ones(1), np.zeros(1), np.zeros(1),
            want, EPS,
        )
        for g, r in zip(got, ref):
            np.testing.assert_array_equal(g, r)
        assert got[2][0] < 3  # closer child collapsed below a polygon
        assert got[5][0] == 3  # farther child keeps the full triangle

    def test_empty_input(self):
        e_f = np.zeros(0)
        e_i = np.zeros(0, dtype=np.int64)
        out = clip_crossing_pieces(
            e_f, e_f, e_i, e_i, e_f, e_f, e_f, np.zeros(0, dtype=bool), EPS
        )
        assert all(a.size == 0 for a in out)


class TestCompressRingsSeam:
    def _dup_chain_case(self):
        # Ring 0: duplicate run + cyclic tail equal to the head; ring 1
        # collapses below 3 vertices (all four slots within eps).
        ex = np.asarray(
            [0.0, 0.0, 1.0, 1.0 + 1e-12, 2.0, 0.0, 5.0, 5.0, 5.0 + 1e-12, 5.0]
        )
        ey = np.asarray(
            [0.0, 0.0, 0.5, 0.5, 1.0, 1e-12, 5.0, 5.0 + 1e-11, 5.0, 5.0]
        )
        ring = np.asarray([0, 0, 0, 0, 0, 0, 1, 1, 1, 1], dtype=np.int64)
        emit = np.ones(10, dtype=bool)
        return ex, ey, ring, emit

    def test_loops_match_numpy_on_degenerate_rings(self, monkeypatch):
        monkeypatch.setenv(KERNELS_ENV, "numpy")
        ex, ey, ring, emit = self._dup_chain_case()
        x, y, counts = compress_rings(ex, ey, ring, emit, 2, EPS)
        # Ring 1 collapsed to a single point: below the 3-vertex polygon
        # floor, exactly the case the engine's area filter then drops.
        np.testing.assert_array_equal(counts, [3, 1])
        lx = ex.copy()
        ly = ey.copy()
        starts = np.asarray([0, 6], dtype=np.int64)
        cnt = np.asarray([6, 4], dtype=np.int64)
        out = np.empty(2, dtype=np.int64)
        _compress_rings_loops(lx, ly, starts, cnt, EPS, out)
        np.testing.assert_array_equal(out, counts)
        np.testing.assert_array_equal(lx[:3], x[:3])
        np.testing.assert_array_equal(ly[:3], y[:3])
        np.testing.assert_array_equal(lx[6:7], x[3:])
        np.testing.assert_array_equal(ly[6:7], y[3:])

    def test_unemitted_slots_are_dropped(self, monkeypatch):
        monkeypatch.setenv(KERNELS_ENV, "numpy")
        ex = np.asarray([0.0, 9.0, 1.0, 2.0])
        ey = np.asarray([0.0, 9.0, 1.0, 2.0])
        ring = np.zeros(4, dtype=np.int64)
        emit = np.asarray([True, False, True, True])
        x, y, counts = compress_rings(ex, ey, ring, emit, 1, EPS)
        np.testing.assert_array_equal(counts, [3])
        np.testing.assert_array_equal(x, [0.0, 1.0, 2.0])

    def test_empty_ring_set(self, monkeypatch):
        monkeypatch.setenv(KERNELS_ENV, "numpy")
        x, y, counts = compress_rings(
            np.zeros(0), np.zeros(0), np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=bool), 3, EPS,
        )
        assert x.size == 0 and y.size == 0
        np.testing.assert_array_equal(counts, [0, 0, 0])


# ----------------------------------------------------------------------
# Kernel thread pool: knob resolution and chunk-ordered reduction
# ----------------------------------------------------------------------
class TestKernelThreads:
    def test_default_is_available_cores(self, monkeypatch):
        monkeypatch.delenv(KERNEL_THREADS_ENV, raising=False)
        assert kernel_threads() >= 1

    def test_explicit_count(self, monkeypatch):
        monkeypatch.setenv(KERNEL_THREADS_ENV, " 3 ")
        assert kernel_threads() == 3

    @pytest.mark.parametrize("bad", ["0", "-2", "two", "1.5"])
    def test_invalid_values_rejected(self, bad, monkeypatch):
        monkeypatch.setenv(KERNEL_THREADS_ENV, bad)
        with pytest.raises(ValueError, match=KERNEL_THREADS_ENV):
            kernel_threads()

    @pytest.mark.parametrize("workers", [1, 2, 5])
    def test_run_chunk_tasks_preserves_submission_order(self, workers):
        results = run_chunk_tasks(
            [lambda i=i: i for i in range(20)], workers=workers
        )
        assert results == list(range(20))

    def test_split_ranges_cover_contiguously(self):
        for total in (1, 7, 100, 1001):
            for workers in (1, 2, 7):
                ranges = split_ranges(total, workers=workers)
                assert ranges[0][0] == 0 and ranges[-1][1] == total
                for (_, a_hi), (b_lo, _) in zip(ranges, ranges[1:]):
                    assert a_hi == b_lo
                assert len(ranges) <= workers

    def test_split_ranges_respects_min_per_worker(self):
        assert split_ranges(100, workers=8, min_per_worker=64) == [(0, 100)]
        assert len(split_ranges(100, workers=8, min_per_worker=25)) <= 4

    def test_split_ranges_empty(self):
        assert split_ranges(0, workers=4) == []

    def test_plan_chunks_worker_dimension_caps_chunk(self):
        # Budget would allow one giant chunk; workers=4 forces at least
        # four so the pool has something to overlap.
        chunks = list(plan_chunks(1000, bytes_per_item=8, budget=10**9, workers=4))
        assert len(chunks) == 4
        assert chunks[0] == (0, 250) and chunks[-1] == (750, 1000)
        serial = list(plan_chunks(1000, bytes_per_item=8, budget=10**9, workers=1))
        assert serial == [(0, 1000)]


# ----------------------------------------------------------------------
# Broken-numba fallback: REPRO_KERNELS=jit degrades to numpy, loudly once
# ----------------------------------------------------------------------
class TestBrokenJitFallback:
    def test_compile_failure_falls_back_with_single_warning(
        self, rng, monkeypatch
    ):
        import sys
        import types
        import warnings as warnings_mod

        fake = types.ModuleType("numba")

        def njit(*args, **kwargs):
            raise RuntimeError("cannot write to numba cache dir")

        fake.njit = njit
        monkeypatch.setitem(sys.modules, "numba", fake)
        monkeypatch.setattr(jk, "_NUMBA_OK", True)
        monkeypatch.setattr(jk, "_JIT_BROKEN", False)
        monkeypatch.setattr(jk, "_JIT_CACHE", {})
        monkeypatch.setenv(KERNELS_ENV, "jit")
        # First acquisition: warns once, naming the env knob.
        with pytest.warns(RuntimeWarning, match=KERNELS_ENV):
            assert jk._get_jit("halfplane_minmax") is None
        # The process is now pinned to numpy — silently.
        with warnings_mod.catch_warnings():
            warnings_mod.simplefilter("error")
            assert jk._get_jit("closer_counts") is None
            assert kernel_tier() == "numpy"
            # And the seams still produce the numpy-tier answer.
            vx, vy, starts, counts, ca, cb, cc = _ragged_pieces(rng)
            pmax, pmin = halfplane_minmax(vx, vy, starts, counts, ca, cb, cc)
            monkeypatch.setenv(KERNELS_ENV, "numpy")
            ref_max, ref_min = halfplane_minmax(
                vx, vy, starts, counts, ca, cb, cc
            )
        np.testing.assert_array_equal(pmax, ref_max)
        np.testing.assert_array_equal(pmin, ref_min)


# ----------------------------------------------------------------------
# JIT tier (only with numba present; CI runs a leg without it)
# ----------------------------------------------------------------------
needs_numba = pytest.mark.skipif(
    not numba_available(), reason="numba not installed"
)


@needs_numba
class TestJitTier:
    def test_halfplane_jit_bitwise_matches_numpy(self, rng, monkeypatch):
        vx, vy, starts, counts, ca, cb, cc = _ragged_pieces(rng, n_pieces=60)
        monkeypatch.setenv(KERNELS_ENV, "numpy")
        ref_max, ref_min = halfplane_minmax(vx, vy, starts, counts, ca, cb, cc)
        monkeypatch.setenv(KERNELS_ENV, "jit")
        jit_max, jit_min = halfplane_minmax(vx, vy, starts, counts, ca, cb, cc)
        np.testing.assert_array_equal(ref_max, jit_max)
        np.testing.assert_array_equal(ref_min, jit_min)

    @pytest.mark.parametrize("cap", [2, 16])
    def test_closer_counts_jit_matches_numpy(self, rng, cap, monkeypatch):
        k = 2
        kx, ky, offsets, counts, sx, sy, tsq = _counting_problem(rng)
        monkeypatch.setenv(KERNELS_ENV, "numpy")
        ref = closer_counts(kx, ky, offsets, counts, sx, sy, tsq, cap, k)
        monkeypatch.setenv(KERNELS_ENV, "jit")
        jit = closer_counts(kx, ky, offsets, counts, sx, sy, tsq, cap, k)
        np.testing.assert_array_equal(ref, jit)

    @THREAD_COUNTS
    def test_classify_jit_bitwise_matches_numpy(self, rng, threads, monkeypatch):
        vx, vy, starts, counts, centry, nblk, ca, cb, cc, sep = (
            _classify_problem(rng, n_pieces=1500)
        )
        monkeypatch.setenv(KERNELS_ENV, "numpy")
        ref = classify_first_events(
            vx, vy, starts, counts, centry, nblk, ca, cb, cc, sep, 1e-9
        )
        monkeypatch.setenv(KERNELS_ENV, "jit")
        monkeypatch.setenv(KERNEL_THREADS_ENV, str(threads))
        jit = classify_first_events(
            vx, vy, starts, counts, centry, nblk, ca, cb, cc, sep, 1e-9
        )
        np.testing.assert_array_equal(ref[0], jit[0])
        np.testing.assert_array_equal(ref[1], jit[1])

    @THREAD_COUNTS
    def test_clip_crossing_jit_bitwise_matches_numpy(
        self, rng, threads, monkeypatch
    ):
        probe = TestClipCrossingPieces()
        vx, vy, starts, counts, ca, cb, cc, want = probe._random_rings(
            rng, n_pieces=600
        )
        monkeypatch.setenv(KERNELS_ENV, "numpy")
        ref = clip_crossing_pieces(vx, vy, starts, counts, ca, cb, cc, want, 1e-9)
        monkeypatch.setenv(KERNELS_ENV, "jit")
        monkeypatch.setenv(KERNEL_THREADS_ENV, str(threads))
        jit = clip_crossing_pieces(vx, vy, starts, counts, ca, cb, cc, want, 1e-9)
        for r, j in zip(ref, jit):
            np.testing.assert_array_equal(r, j)

    def test_compress_rings_jit_matches_numpy(self, monkeypatch):
        ex, ey, ring, emit = TestCompressRingsSeam()._dup_chain_case()
        monkeypatch.setenv(KERNELS_ENV, "numpy")
        ref = compress_rings(ex, ey, ring, emit, 2, 1e-9)
        monkeypatch.setenv(KERNELS_ENV, "jit")
        jit = compress_rings(ex, ey, ring, emit, 2, 1e-9)
        for r, j in zip(ref, jit):
            np.testing.assert_array_equal(r, j)


# ----------------------------------------------------------------------
# plan_chunks edge cases
# ----------------------------------------------------------------------
class TestPlanChunksEdges:
    def test_single_giant_panel(self):
        # Budget big enough for everything: exactly one chunk.
        assert list(plan_chunks(10_000, bytes_per_item=8, budget=10_000 * 8)) == [
            (0, 10_000)
        ]

    def test_budget_below_one_item_degrades_to_singles(self):
        assert list(plan_chunks(3, bytes_per_item=1024, budget=8)) == [
            (0, 1),
            (1, 2),
            (2, 3),
        ]

    def test_zero_items_yields_nothing(self):
        assert list(plan_chunks(0, bytes_per_item=8, budget=1)) == []

    def test_negative_total_rejected(self):
        with pytest.raises(ValueError):
            list(plan_chunks(-1, bytes_per_item=8))


# ----------------------------------------------------------------------
# PieceAccumulator: owner-then-discovery order
# ----------------------------------------------------------------------
class TestPieceAccumulatorOrdering:
    def test_owner_then_discovery_order(self):
        acc = PieceAccumulator()
        # Iteration 1 finishes owners 2 and 0 (in that clip-output
        # order); iteration 2 finishes owner 1 with two pieces.
        acc.extend(
            np.asarray([0.0, 1.0, 2.0, 10.0, 11.0, 12.0]),
            np.asarray([0.5, 1.5, 2.5, 10.5, 11.5, 12.5]),
            np.asarray([3, 3]),
            np.asarray([2, 0]),
        )
        acc.extend(
            np.asarray([20.0, 21.0, 22.0, 30.0, 31.0, 32.0, 33.0]),
            np.asarray([20.5, 21.5, 22.5, 30.5, 31.5, 32.5, 33.5]),
            np.asarray([3, 4]),
            np.asarray([1, 1]),
        )
        vx, vy, piece_indptr, piece_owner, vert_indptr = acc.finalize(3)
        # Pieces grouped by ascending owner; owner 1's two pieces keep
        # their within-iteration discovery order.
        np.testing.assert_array_equal(piece_owner, [0, 1, 1, 2])
        np.testing.assert_array_equal(piece_indptr, [0, 3, 6, 10, 13])
        np.testing.assert_array_equal(vx[:3], [10.0, 11.0, 12.0])
        np.testing.assert_array_equal(vx[3:6], [20.0, 21.0, 22.0])
        np.testing.assert_array_equal(vx[6:10], [30.0, 31.0, 32.0, 33.0])
        np.testing.assert_array_equal(vx[10:], [0.0, 1.0, 2.0])
        np.testing.assert_array_equal(vert_indptr, [0, 3, 10, 13])
        assert vy[10] == 0.5

    def test_empty_finalize(self):
        vx, vy, piece_indptr, piece_owner, vert_indptr = (
            PieceAccumulator().finalize(4)
        )
        assert vx.size == 0 and vy.size == 0
        np.testing.assert_array_equal(piece_indptr, [0])
        assert piece_owner.size == 0
        np.testing.assert_array_equal(vert_indptr, [0, 0, 0, 0, 0])

    def test_empty_extend_is_noop(self):
        acc = PieceAccumulator()
        acc.extend(np.zeros(0), np.zeros(0), np.zeros(0, dtype=np.int64),
                   np.zeros(0, dtype=np.int64))
        _, _, piece_indptr, piece_owner, _ = acc.finalize(1)
        np.testing.assert_array_equal(piece_indptr, [0])
        assert piece_owner.size == 0

    def test_extend_csr_matches_extend(self, rng):
        # CSR-direct appends (all rows, and a row subset) must finalize
        # identically to the historic counts-based extend.
        counts = rng.integers(1, 6, size=12).astype(np.int64)
        indptr = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
        total = int(counts.sum())
        vx = rng.uniform(-1.0, 1.0, size=total)
        vy = rng.uniform(-1.0, 1.0, size=total)
        owners = rng.integers(0, 5, size=12).astype(np.int64)
        rows = np.asarray([1, 4, 5, 9], dtype=np.int64)

        ref = PieceAccumulator()
        ref.extend(vx, vy, counts, owners)
        gidx = ragged_indices(indptr[:-1][rows], counts[rows])
        ref.extend(vx[gidx], vy[gidx], counts[rows], owners[rows])

        acc = PieceAccumulator()
        acc.extend_csr(vx, vy, indptr, owners)
        acc.extend_csr(vx, vy, indptr, owners, rows=rows)

        for r, a in zip(ref.finalize(5), acc.finalize(5)):
            np.testing.assert_array_equal(r, a)

    def test_extend_csr_empty_rows_is_noop(self):
        acc = PieceAccumulator()
        acc.extend_csr(
            np.zeros(3), np.zeros(3), np.asarray([0, 3], dtype=np.int64),
            np.zeros(1, dtype=np.int64), rows=np.zeros(0, dtype=np.int64),
        )
        _, _, piece_indptr, piece_owner, _ = acc.finalize(2)
        np.testing.assert_array_equal(piece_indptr, [0])
        assert piece_owner.size == 0


# ----------------------------------------------------------------------
# Ragged-index primitives backing both tiers
# ----------------------------------------------------------------------
class TestRaggedPrimitives:
    def test_ragged_indices_matches_concatenated_aranges(self, rng):
        starts = rng.integers(0, 50, size=20).astype(np.int64)
        counts = rng.integers(0, 6, size=20).astype(np.int64)
        expected = np.concatenate(
            [np.arange(s, s + c) for s, c in zip(starts, counts)]
            or [np.zeros(0, dtype=np.int64)]
        )
        np.testing.assert_array_equal(ragged_indices(starts, counts), expected)

    def test_segment_ids_matches_repeat(self, rng):
        counts = rng.integers(0, 5, size=30).astype(np.int64)
        expected = np.repeat(np.arange(30), counts)
        np.testing.assert_array_equal(
            segment_ids(counts, int(counts.sum())), expected
        )
