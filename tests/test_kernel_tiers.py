"""Kernel-tier seam tests: env resolution, oracles, and piece emission.

The sparse tier's two bandwidth-bound kernels live behind a seam in
``repro.engine.jit_kernels`` with a NumPy reference implementation (the
equivalence oracle, always present) and an optional numba-compiled
tier.  These tests pin the contract from DESIGN.md "Kernel tiers":

* ``REPRO_KERNELS`` resolves to ``numpy``/``jit`` with clear errors for
  invalid values and for ``jit`` without numba;
* the loop-form kernel bodies (the exact code numba compiles) agree
  with the NumPy implementations — bitwise for half-plane values,
  decision-exactly for closer counts;
* :class:`repro.engine.pieces.PieceAccumulator` reproduces the historic
  owner-then-discovery piece order of the ``_stash_pieces`` loop it
  replaced.

The JIT-tier tests run only when numba is importable; CI exercises both
legs (see ``.github/workflows/ci.yml``).
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.engine.jit_kernels as jk
from repro.engine.jit_kernels import (
    KERNELS_ENV,
    _closer_counts_loops,
    _halfplane_minmax_loops,
    closer_counts,
    halfplane_minmax,
    kernel_tier,
    numba_available,
    ragged_indices,
    segment_ids,
)
from repro.engine.kernels import plan_chunks
from repro.engine.pieces import PieceAccumulator


# ----------------------------------------------------------------------
# Ragged fixtures
# ----------------------------------------------------------------------
def _ragged_pieces(rng, n_pieces=40, max_verts=9):
    counts = rng.integers(1, max_verts, size=n_pieces).astype(np.int64)
    starts = (np.cumsum(counts) - counts).astype(np.int64)
    total = int(counts.sum())
    vx = rng.uniform(-3.0, 3.0, size=total)
    vy = rng.uniform(-3.0, 3.0, size=total)
    ca = rng.uniform(-2.0, 2.0, size=n_pieces)
    cb = rng.uniform(-2.0, 2.0, size=n_pieces)
    cc = rng.uniform(-2.0, 2.0, size=n_pieces)
    return vx, vy, starts, counts, ca, cb, cc


def _counting_problem(rng, n_rows=25, n_samples=16, max_known=30):
    counts = rng.integers(0, max_known, size=n_rows).astype(np.int64)
    offsets = (np.cumsum(counts) - counts).astype(np.int64)
    total = int(counts.sum())
    kx = rng.uniform(0.0, 1.0, size=total)
    ky = rng.uniform(0.0, 1.0, size=total)
    sample_x = rng.uniform(0.0, 1.0, size=(n_rows, n_samples))
    sample_y = rng.uniform(0.0, 1.0, size=(n_rows, n_samples))
    threshold_sq = rng.uniform(0.0, 0.05, size=(n_rows, n_samples))
    return kx, ky, offsets, counts, sample_x, sample_y, threshold_sq


@pytest.fixture
def rng():
    return np.random.default_rng(20260808)


# ----------------------------------------------------------------------
# REPRO_KERNELS resolution
# ----------------------------------------------------------------------
class TestTierResolution:
    def test_default_is_auto(self, monkeypatch):
        monkeypatch.delenv(KERNELS_ENV, raising=False)
        assert kernel_tier() == ("jit" if numba_available() else "numpy")

    def test_blank_value_means_auto(self, monkeypatch):
        monkeypatch.setenv(KERNELS_ENV, "  ")
        assert kernel_tier() == ("jit" if numba_available() else "numpy")

    def test_numpy_forced(self, monkeypatch):
        monkeypatch.setenv(KERNELS_ENV, "numpy")
        assert kernel_tier() == "numpy"

    def test_case_insensitive(self, monkeypatch):
        monkeypatch.setenv(KERNELS_ENV, " NumPy ")
        assert kernel_tier() == "numpy"

    def test_invalid_value_rejected(self, monkeypatch):
        monkeypatch.setenv(KERNELS_ENV, "fortran")
        with pytest.raises(ValueError, match="fortran"):
            kernel_tier()

    def test_jit_without_numba_raises(self, monkeypatch):
        monkeypatch.setenv(KERNELS_ENV, "jit")
        monkeypatch.setattr(jk, "_NUMBA_OK", False)
        with pytest.raises(RuntimeError, match="numba"):
            kernel_tier()

    def test_auto_without_numba_falls_back(self, monkeypatch):
        monkeypatch.setenv(KERNELS_ENV, "auto")
        monkeypatch.setattr(jk, "_NUMBA_OK", False)
        assert kernel_tier() == "numpy"

    def test_auto_with_numba_selects_jit(self, monkeypatch):
        monkeypatch.setenv(KERNELS_ENV, "auto")
        monkeypatch.setattr(jk, "_NUMBA_OK", True)
        assert kernel_tier() == "jit"


# ----------------------------------------------------------------------
# Loop-form bodies as dependency-free oracles of the NumPy seam
# ----------------------------------------------------------------------
class TestLoopFormOracles:
    def test_halfplane_loops_bitwise_match_numpy(self, rng, monkeypatch):
        monkeypatch.setenv(KERNELS_ENV, "numpy")
        vx, vy, starts, counts, ca, cb, cc = _ragged_pieces(rng)
        pmax, pmin = halfplane_minmax(vx, vy, starts, counts, ca, cb, cc)
        lmax = np.empty_like(pmax)
        lmin = np.empty_like(pmin)
        _halfplane_minmax_loops(vx, vy, starts, counts, ca, cb, cc, lmax, lmin)
        # Bitwise: the loop body uses the identical IEEE expression.
        np.testing.assert_array_equal(pmax, lmax)
        np.testing.assert_array_equal(pmin, lmin)

    @pytest.mark.parametrize("cap", [1, 4, 16, 1000])
    def test_closer_counts_decisions_match_loops(self, rng, cap, monkeypatch):
        monkeypatch.setenv(KERNELS_ENV, "numpy")
        k = 2
        kx, ky, offsets, counts, sx, sy, tsq = _counting_problem(rng)
        out_np = closer_counts(kx, ky, offsets, counts, sx, sy, tsq, cap, k)
        out_loops = np.zeros_like(out_np)
        _closer_counts_loops(
            kx, ky, offsets, counts, sx, sy, tsq, cap, k, out_loops
        )
        # Counts themselves are only decision-equivalent across cap
        # values, but for the *same* cap the two-stage schedules agree
        # exactly, so the matrices must be equal.
        np.testing.assert_array_equal(out_np, out_loops)

    @pytest.mark.parametrize("cap", [1, 3, 7, 64])
    def test_closer_counts_decisions_match_brute_force(self, rng, cap):
        k = 2
        kx, ky, offsets, counts, sx, sy, tsq = _counting_problem(rng)
        out = closer_counts(kx, ky, offsets, counts, sx, sy, tsq, cap, k)
        n_rows, n_samples = sx.shape
        full = np.zeros((n_rows, n_samples), dtype=np.int64)
        for r in range(n_rows):
            for s in range(n_samples):
                for j in range(offsets[r], offsets[r] + counts[r]):
                    dx = kx[j] - sx[r, s]
                    dy = ky[j] - sy[r, s]
                    if dx * dx + dy * dy < tsq[r, s]:
                        full[r, s] += 1
        # Decision contract: ``count >= k`` agrees everywhere with the
        # exhaustive count, for any stage-1 budget.
        np.testing.assert_array_equal(out >= k, full >= k)

    def test_empty_inputs(self):
        empty_i = np.zeros(0, dtype=np.int64)
        empty_f = np.zeros(0)
        pmax, pmin = halfplane_minmax(
            empty_f, empty_f, empty_i, empty_i, empty_f, empty_f, empty_f
        )
        assert pmax.shape == (0,) and pmin.shape == (0,)
        out = closer_counts(
            empty_f, empty_f, empty_i, empty_i,
            np.zeros((0, 8)), np.zeros((0, 8)), np.zeros((0, 8)), 4, 2,
        )
        assert out.shape == (0, 8)


# ----------------------------------------------------------------------
# JIT tier (only with numba present; CI runs a leg without it)
# ----------------------------------------------------------------------
needs_numba = pytest.mark.skipif(
    not numba_available(), reason="numba not installed"
)


@needs_numba
class TestJitTier:
    def test_halfplane_jit_bitwise_matches_numpy(self, rng, monkeypatch):
        vx, vy, starts, counts, ca, cb, cc = _ragged_pieces(rng, n_pieces=60)
        monkeypatch.setenv(KERNELS_ENV, "numpy")
        ref_max, ref_min = halfplane_minmax(vx, vy, starts, counts, ca, cb, cc)
        monkeypatch.setenv(KERNELS_ENV, "jit")
        jit_max, jit_min = halfplane_minmax(vx, vy, starts, counts, ca, cb, cc)
        np.testing.assert_array_equal(ref_max, jit_max)
        np.testing.assert_array_equal(ref_min, jit_min)

    @pytest.mark.parametrize("cap", [2, 16])
    def test_closer_counts_jit_matches_numpy(self, rng, cap, monkeypatch):
        k = 2
        kx, ky, offsets, counts, sx, sy, tsq = _counting_problem(rng)
        monkeypatch.setenv(KERNELS_ENV, "numpy")
        ref = closer_counts(kx, ky, offsets, counts, sx, sy, tsq, cap, k)
        monkeypatch.setenv(KERNELS_ENV, "jit")
        jit = closer_counts(kx, ky, offsets, counts, sx, sy, tsq, cap, k)
        np.testing.assert_array_equal(ref, jit)


# ----------------------------------------------------------------------
# plan_chunks edge cases
# ----------------------------------------------------------------------
class TestPlanChunksEdges:
    def test_single_giant_panel(self):
        # Budget big enough for everything: exactly one chunk.
        assert list(plan_chunks(10_000, bytes_per_item=8, budget=10_000 * 8)) == [
            (0, 10_000)
        ]

    def test_budget_below_one_item_degrades_to_singles(self):
        assert list(plan_chunks(3, bytes_per_item=1024, budget=8)) == [
            (0, 1),
            (1, 2),
            (2, 3),
        ]

    def test_zero_items_yields_nothing(self):
        assert list(plan_chunks(0, bytes_per_item=8, budget=1)) == []

    def test_negative_total_rejected(self):
        with pytest.raises(ValueError):
            list(plan_chunks(-1, bytes_per_item=8))


# ----------------------------------------------------------------------
# PieceAccumulator: owner-then-discovery order
# ----------------------------------------------------------------------
class TestPieceAccumulatorOrdering:
    def test_owner_then_discovery_order(self):
        acc = PieceAccumulator()
        # Iteration 1 finishes owners 2 and 0 (in that clip-output
        # order); iteration 2 finishes owner 1 with two pieces.
        acc.extend(
            np.asarray([0.0, 1.0, 2.0, 10.0, 11.0, 12.0]),
            np.asarray([0.5, 1.5, 2.5, 10.5, 11.5, 12.5]),
            np.asarray([3, 3]),
            np.asarray([2, 0]),
        )
        acc.extend(
            np.asarray([20.0, 21.0, 22.0, 30.0, 31.0, 32.0, 33.0]),
            np.asarray([20.5, 21.5, 22.5, 30.5, 31.5, 32.5, 33.5]),
            np.asarray([3, 4]),
            np.asarray([1, 1]),
        )
        vx, vy, piece_indptr, piece_owner, vert_indptr = acc.finalize(3)
        # Pieces grouped by ascending owner; owner 1's two pieces keep
        # their within-iteration discovery order.
        np.testing.assert_array_equal(piece_owner, [0, 1, 1, 2])
        np.testing.assert_array_equal(piece_indptr, [0, 3, 6, 10, 13])
        np.testing.assert_array_equal(vx[:3], [10.0, 11.0, 12.0])
        np.testing.assert_array_equal(vx[3:6], [20.0, 21.0, 22.0])
        np.testing.assert_array_equal(vx[6:10], [30.0, 31.0, 32.0, 33.0])
        np.testing.assert_array_equal(vx[10:], [0.0, 1.0, 2.0])
        np.testing.assert_array_equal(vert_indptr, [0, 3, 10, 13])
        assert vy[10] == 0.5

    def test_empty_finalize(self):
        vx, vy, piece_indptr, piece_owner, vert_indptr = (
            PieceAccumulator().finalize(4)
        )
        assert vx.size == 0 and vy.size == 0
        np.testing.assert_array_equal(piece_indptr, [0])
        assert piece_owner.size == 0
        np.testing.assert_array_equal(vert_indptr, [0, 0, 0, 0, 0])

    def test_empty_extend_is_noop(self):
        acc = PieceAccumulator()
        acc.extend(np.zeros(0), np.zeros(0), np.zeros(0, dtype=np.int64),
                   np.zeros(0, dtype=np.int64))
        _, _, piece_indptr, piece_owner, _ = acc.finalize(1)
        np.testing.assert_array_equal(piece_indptr, [0])
        assert piece_owner.size == 0


# ----------------------------------------------------------------------
# Ragged-index primitives backing both tiers
# ----------------------------------------------------------------------
class TestRaggedPrimitives:
    def test_ragged_indices_matches_concatenated_aranges(self, rng):
        starts = rng.integers(0, 50, size=20).astype(np.int64)
        counts = rng.integers(0, 6, size=20).astype(np.int64)
        expected = np.concatenate(
            [np.arange(s, s + c) for s, c in zip(starts, counts)]
            or [np.zeros(0, dtype=np.int64)]
        )
        np.testing.assert_array_equal(ragged_indices(starts, counts), expected)

    def test_segment_ids_matches_repeat(self, rng):
        counts = rng.integers(0, 5, size=30).astype(np.int64)
        expected = np.repeat(np.arange(30), counts)
        np.testing.assert_array_equal(
            segment_ids(counts, int(counts.sum())), expected
        )
