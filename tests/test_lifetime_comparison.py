"""Tests for the lifetime-comparison extension experiment."""

import pytest

from repro.experiments.cli import EXPERIMENTS
from repro.experiments.lifetime_comparison import run_lifetime_comparison


class TestLifetimeComparison:
    @pytest.fixture(scope="class")
    def result(self):
        return run_lifetime_comparison(
            node_count=16, k=2, max_rounds=50, coverage_resolution=35, seed=5
        )

    def test_three_deployments_reported(self, result):
        assert {row["deployment"] for row in result.rows} == {
            "laacad",
            "static-random",
            "lattice",
        }

    def test_all_deployments_k_cover(self, result):
        for row in result.rows:
            assert row["coverage_fraction"] == pytest.approx(1.0)

    def test_laacad_outlives_static_random(self, result):
        rows = {row["deployment"]: row for row in result.rows}
        assert rows["laacad"]["first_death_time"] > rows["static-random"]["first_death_time"]
        assert rows["laacad"]["max_load"] < rows["static-random"]["max_load"]

    def test_laacad_close_to_balanced(self, result):
        rows = {row["deployment"]: row for row in result.rows}
        assert rows["laacad"]["lifetime_ratio_to_balanced"] > 0.5

    def test_registered_in_cli(self):
        assert "lifetime_comparison" in EXPERIMENTS
