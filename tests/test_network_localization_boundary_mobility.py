"""Unit tests for localization (MDS), boundary detection and mobility."""

import math

import numpy as np
import pytest

from repro.network.boundary import (
    angular_gap_boundary_nodes,
    detect_boundary_nodes,
    mark_boundary_nodes,
)
from repro.network.localization import build_local_coordinates, classical_mds, procrustes_align
from repro.network.mobility import MobilityModel
from repro.network.neighbors import pairwise_distances
from repro.network.network import SensorNetwork
from repro.regions.shapes import figure8_region_one, unit_square


class TestClassicalMDS:
    def test_recovers_pairwise_distances(self, rng):
        pts = rng.uniform(0, 1, size=(12, 2))
        original = pairwise_distances([tuple(p) for p in pts])
        coords = classical_mds(original)
        recovered = pairwise_distances([tuple(p) for p in coords])
        assert np.allclose(recovered, original, atol=1e-8)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            classical_mds(np.zeros((3, 4)))

    def test_empty_input(self):
        assert classical_mds(np.zeros((0, 0))).shape == (0, 2)

    def test_noisy_distances_still_close(self, rng):
        pts = rng.uniform(0, 1, size=(15, 2))
        dm = pairwise_distances([tuple(p) for p in pts])
        noise = rng.normal(0, 0.005, size=dm.shape)
        noise = (noise + noise.T) / 2
        np.fill_diagonal(noise, 0.0)
        coords = classical_mds(np.clip(dm + noise, 0, None))
        recovered = pairwise_distances([tuple(p) for p in coords])
        assert np.abs(recovered - dm).max() < 0.05


class TestProcrustes:
    def test_alignment_recovers_rotation(self, rng):
        pts = rng.uniform(0, 1, size=(10, 2))
        angle = 0.7
        rotation = np.array([[math.cos(angle), -math.sin(angle)], [math.sin(angle), math.cos(angle)]])
        rotated = pts @ rotation + np.array([2.0, -1.0])
        aligned = procrustes_align(rotated, pts)
        assert np.allclose(aligned, pts, atol=1e-8)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            procrustes_align(np.zeros((3, 2)), np.zeros((4, 2)))


class TestBuildLocalCoordinates:
    def test_noise_free_reconstruction_exact(self, rng):
        pts = [tuple(p) for p in rng.uniform(0, 1, size=(10, 2))]
        coords = build_local_coordinates(0, pts)
        for original, estimate in zip(pts, coords):
            assert math.hypot(original[0] - estimate[0], original[1] - estimate[1]) < 1e-6

    def test_center_index_validation(self, rng):
        pts = [tuple(p) for p in rng.uniform(0, 1, size=(5, 2))]
        with pytest.raises(IndexError):
            build_local_coordinates(10, pts)

    def test_noisy_reconstruction_close(self, rng):
        pts = [tuple(p) for p in rng.uniform(0, 1, size=(12, 2))]
        coords = build_local_coordinates(0, pts, noise_std=0.002, rng=rng)
        errors = [math.hypot(a[0] - b[0], a[1] - b[1]) for a, b in zip(pts, coords)]
        assert max(errors) < 0.05


class TestBoundaryDetection:
    def test_geometric_detector_flags_edge_nodes(self, square):
        positions = [(0.05, 0.5), (0.5, 0.5), (0.95, 0.5)]
        net = SensorNetwork(square, positions, comm_range=0.3)
        boundary = detect_boundary_nodes(net, threshold=0.1)
        assert set(boundary) == {0, 2}

    def test_default_threshold_uses_comm_range(self, square):
        positions = [(0.05, 0.5), (0.5, 0.5)]
        net = SensorNetwork(square, positions, comm_range=0.2)
        assert detect_boundary_nodes(net) == [0]

    def test_negative_threshold_rejected(self, small_network):
        with pytest.raises(ValueError):
            detect_boundary_nodes(small_network, threshold=-0.1)

    def test_detector_sees_obstacle_boundaries(self):
        region = figure8_region_one()
        positions = [(0.35, 0.5), (0.15, 0.15)]
        net = SensorNetwork(region, positions, comm_range=0.2)
        boundary = detect_boundary_nodes(net, threshold=0.08)
        assert 0 in boundary  # near the hole edge at x = 0.40

    def test_angular_gap_detector(self, square):
        # A node surrounded on all sides is interior; a corner node is boundary.
        positions = [
            (0.5, 0.5),
            (0.6, 0.5),
            (0.4, 0.5),
            (0.5, 0.6),
            (0.5, 0.4),
            (0.05, 0.05),
        ]
        net = SensorNetwork(square, positions, comm_range=0.15)
        boundary = angular_gap_boundary_nodes(net, gap_threshold_deg=120.0)
        assert 5 in boundary
        assert 0 not in boundary

    def test_angular_gap_validation(self, small_network):
        with pytest.raises(ValueError):
            angular_gap_boundary_nodes(small_network, gap_threshold_deg=0.0)

    def test_mark_boundary_nodes(self, small_network):
        mark_boundary_nodes(small_network, [0, 1])
        assert small_network.node(0).is_boundary
        assert small_network.node(1).is_boundary
        assert not small_network.node(2).is_boundary


class TestMobilityModel:
    def test_unconstrained_move(self, square):
        model = MobilityModel()
        assert model.constrain(square, (0.1, 0.1), (0.4, 0.4)) == (0.4, 0.4)

    def test_max_step_limits_displacement(self, square):
        model = MobilityModel(max_step=0.1)
        result = model.constrain(square, (0.1, 0.1), (0.9, 0.1))
        assert math.hypot(result[0] - 0.1, result[1] - 0.1) == pytest.approx(0.1)

    def test_invalid_max_step_rejected(self):
        with pytest.raises(ValueError):
            MobilityModel(max_step=0.0)

    def test_target_outside_region_projected(self, square):
        model = MobilityModel()
        result = model.constrain(square, (0.9, 0.5), (1.4, 0.5))
        assert square.contains(result)

    def test_target_in_obstacle_projected(self):
        region = figure8_region_one()
        model = MobilityModel()
        result = model.constrain(region, (0.3, 0.5), (0.5, 0.5))
        assert region.contains(result)

    def test_keep_in_region_disabled(self, square):
        model = MobilityModel(keep_in_region=False)
        assert model.constrain(square, (0.9, 0.5), (1.4, 0.5)) == (1.4, 0.5)
