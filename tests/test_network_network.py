"""Unit tests for repro.network.network.SensorNetwork and spatial indexing."""

import math

import numpy as np
import pytest

from repro.geometry.primitives import distance
from repro.network.neighbors import SpatialGrid, pairwise_distances
from repro.network.network import SensorNetwork
from repro.regions.shapes import figure8_region_one, unit_square


class TestConstruction:
    def test_requires_nodes(self, square):
        with pytest.raises(ValueError):
            SensorNetwork(square, [], comm_range=0.2)

    def test_requires_positive_comm_range(self, square):
        with pytest.raises(ValueError):
            SensorNetwork(square, [(0.5, 0.5)], comm_range=0.0)

    def test_size_and_positions(self, square):
        net = SensorNetwork(square, [(0.1, 0.1), (0.9, 0.9)], comm_range=0.3)
        assert net.size == len(net) == 2
        assert net.positions() == [(0.1, 0.1), (0.9, 0.9)]
        assert net.positions_array().shape == (2, 2)

    def test_from_random_inside_region(self, square, rng):
        net = SensorNetwork.from_random(square, 25, comm_range=0.2, rng=rng)
        assert net.size == 25
        assert all(square.contains(p) for p in net.positions())

    def test_from_corner_cluster(self, square):
        net = SensorNetwork.from_corner_cluster(
            square, 30, cluster_fraction=0.2, rng=np.random.default_rng(1)
        )
        assert all(x <= 0.2 + 1e-9 and y <= 0.2 + 1e-9 for x, y in net.positions())

    def test_corner_cluster_validation(self, square):
        with pytest.raises(ValueError):
            SensorNetwork.from_corner_cluster(square, 10, cluster_fraction=0.0)

    def test_node_lookup_and_out_of_range(self, small_network):
        assert small_network.node(0).node_id == 0
        with pytest.raises(IndexError):
            small_network.node(small_network.size)


class TestMutation:
    def test_move_node_returns_distance(self, square):
        net = SensorNetwork(square, [(0.1, 0.1)], comm_range=0.2)
        moved = net.move_node(0, (0.4, 0.5))
        assert moved == pytest.approx(math.hypot(0.3, 0.4))
        assert net.node(0).position == (0.4, 0.5)

    def test_move_node_clamps_to_region(self, square):
        net = SensorNetwork(square, [(0.9, 0.5)], comm_range=0.2)
        net.move_node(0, (1.5, 0.5))
        assert square.contains(net.node(0).position)

    def test_move_node_respects_obstacles(self):
        region = figure8_region_one()
        net = SensorNetwork(region, [(0.2, 0.5)], comm_range=0.2)
        net.move_node(0, (0.5, 0.5))  # hole center
        assert region.contains(net.node(0).position)

    def test_set_sensing_range(self, small_network):
        small_network.set_sensing_range(0, 0.4)
        assert small_network.node(0).sensing_range == 0.4
        with pytest.raises(ValueError):
            small_network.set_sensing_range(0, -0.1)

    def test_kill_node(self, small_network):
        small_network.kill_node(0)
        assert not small_network.node(0).alive
        assert len(small_network.alive_nodes()) == small_network.size - 1
        assert len(small_network.positions(alive_only=True)) == small_network.size - 1

    def test_apply_moves_matches_sequential_move_node(self, square):
        positions = [(0.1, 0.1), (0.5, 0.5), (0.9, 0.2)]
        targets = {0: (0.2, 0.3), 2: (1.4, 0.2)}  # node 2 clamps to the region
        net_batch = SensorNetwork(square, positions, comm_range=0.2)
        net_seq = SensorNetwork(square, positions, comm_range=0.2)
        moved_batch = net_batch.apply_moves(targets)
        moved_seq = {i: net_seq.move_node(i, t) for i, t in targets.items()}
        assert moved_batch == moved_seq
        assert net_batch.positions() == net_seq.positions()
        assert [n.distance_traveled for n in net_batch.nodes] == [
            n.distance_traveled for n in net_seq.nodes
        ]

    def test_apply_moves_invalidates_caches_once(self, square):
        net = SensorNetwork(square, [(0.1, 0.1), (0.8, 0.8)], comm_range=0.3)
        net.one_hop_neighbors(0)  # populate the grid cache
        assert net._grid_cache is not None
        net.apply_moves({0: (0.75, 0.75)})
        assert net._grid_cache is None  # invalidated by the batch
        assert net.one_hop_neighbors(0) == [1]
        # An empty batch leaves the freshly built caches untouched.
        grid = net._grid_cache
        net.apply_moves({})
        assert net._grid_cache is grid


class TestNeighbourhoods:
    def test_one_hop_neighbors_within_range(self, square):
        positions = [(0.1, 0.1), (0.2, 0.1), (0.9, 0.9)]
        net = SensorNetwork(square, positions, comm_range=0.2)
        assert net.one_hop_neighbors(0) == [1]
        assert net.one_hop_neighbors(2) == []

    def test_dead_nodes_excluded_from_neighbors(self, square):
        net = SensorNetwork(square, [(0.1, 0.1), (0.2, 0.1)], comm_range=0.2)
        net.kill_node(1)
        assert net.one_hop_neighbors(0) == []

    def test_nodes_within_radius(self, square):
        positions = [(0.5, 0.5), (0.6, 0.5), (0.8, 0.5), (0.95, 0.5)]
        net = SensorNetwork(square, positions, comm_range=0.15)
        assert set(net.nodes_within(0, 0.35)) == {1, 2}

    def test_hop_neighbors_bfs(self, square):
        positions = [(0.1, 0.5), (0.25, 0.5), (0.4, 0.5), (0.55, 0.5)]
        net = SensorNetwork(square, positions, comm_range=0.16)
        assert set(net.hop_neighbors(0, 1)) == {1}
        assert set(net.hop_neighbors(0, 2)) == {1, 2}
        assert set(net.hop_neighbors(0, 3)) == {1, 2, 3}
        with pytest.raises(ValueError):
            net.hop_neighbors(0, -1)

    def test_k_nearest(self, square):
        positions = [(0.1, 0.1), (0.2, 0.1), (0.5, 0.5), (0.9, 0.9)]
        net = SensorNetwork(square, positions, comm_range=0.2)
        assert net.k_nearest((0.0, 0.0), 2) == [0, 1]
        assert net.k_nearest((0.0, 0.0), 2, exclude=0) == [1, 2]
        with pytest.raises(ValueError):
            net.k_nearest((0.0, 0.0), 0)


class TestGraphStructure:
    def test_connectivity_graph_edges(self, square):
        positions = [(0.1, 0.1), (0.2, 0.1), (0.9, 0.9)]
        net = SensorNetwork(square, positions, comm_range=0.2)
        graph = net.connectivity_graph()
        assert graph.has_edge(0, 1)
        assert not graph.has_edge(0, 2)

    def test_is_connected(self, square):
        net = SensorNetwork(square, [(0.1, 0.1), (0.2, 0.1), (0.9, 0.9)], comm_range=0.2)
        assert not net.is_connected()
        dense = SensorNetwork(square, [(0.1, 0.1), (0.2, 0.1), (0.3, 0.1)], comm_range=0.2)
        assert dense.is_connected()

    def test_min_degree(self, square):
        net = SensorNetwork(square, [(0.1, 0.1), (0.2, 0.1), (0.3, 0.1)], comm_range=0.15)
        assert net.min_degree() == 1

    def test_distance_matrix(self, small_network):
        dm = small_network.distance_matrix()
        assert dm.shape == (small_network.size, small_network.size)
        assert np.allclose(np.diag(dm), 0.0)
        assert np.allclose(dm, dm.T)

    def test_graph_cache_invalidated_on_move(self, square):
        net = SensorNetwork(square, [(0.1, 0.1), (0.5, 0.5)], comm_range=0.2)
        assert not net.connectivity_graph().has_edge(0, 1)
        net.move_node(1, (0.2, 0.1))
        assert net.connectivity_graph().has_edge(0, 1)


class TestSpatialGrid:
    def test_query_radius(self):
        pts = [(0.0, 0.0), (0.1, 0.0), (1.0, 1.0)]
        grid = SpatialGrid(pts, cell_size=0.25)
        assert set(grid.query_radius((0.0, 0.0), 0.2)) == {0, 1}
        assert set(grid.query_radius((0.0, 0.0), 2.0)) == {0, 1, 2}

    def test_query_radius_validation(self):
        grid = SpatialGrid([(0.0, 0.0)], cell_size=0.5)
        with pytest.raises(ValueError):
            grid.query_radius((0, 0), -1.0)
        with pytest.raises(ValueError):
            SpatialGrid([(0, 0)], cell_size=0.0)

    def test_k_nearest_matches_bruteforce(self, rng):
        pts = [tuple(p) for p in rng.uniform(0, 1, size=(40, 2))]
        grid = SpatialGrid(pts, cell_size=0.2)
        query = (0.4, 0.6)
        result = grid.k_nearest(query, 5)
        brute = sorted(range(len(pts)), key=lambda i: distance(pts[i], query))[:5]
        assert sorted(distance(pts[i], query) for i in result) == pytest.approx(
            sorted(distance(pts[i], query) for i in brute)
        )

    def test_k_nearest_validation(self):
        grid = SpatialGrid([(0, 0), (1, 1)], cell_size=0.5)
        with pytest.raises(ValueError):
            grid.k_nearest((0, 0), 0)

    def test_pairwise_distances(self):
        pts = [(0.0, 0.0), (3.0, 4.0)]
        dm = pairwise_distances(pts)
        assert dm[0, 1] == pytest.approx(5.0)
        with pytest.raises(ValueError):
            pairwise_distances([(0.0, 0.0, 0.0)])
