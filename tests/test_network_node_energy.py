"""Unit tests for repro.network.node and repro.network.energy."""

import math

import pytest

from repro.network.energy import EnergyModel
from repro.network.node import Node


class TestNode:
    def test_defaults(self):
        node = Node(node_id=0, position=(0.5, 0.5))
        assert node.alive and not node.is_boundary
        assert node.distance_traveled == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Node(node_id=-1, position=(0, 0))
        with pytest.raises(ValueError):
            Node(node_id=0, position=(0, 0), sensing_range=-1.0)
        with pytest.raises(ValueError):
            Node(node_id=0, position=(0, 0), comm_range=0.0)

    def test_position_coerced_to_float_tuple(self):
        node = Node(node_id=1, position=(1, 2))
        assert node.position == (1.0, 2.0)

    def test_move_to_accumulates_distance(self):
        node = Node(node_id=0, position=(0.0, 0.0))
        moved = node.move_to((3.0, 4.0))
        assert moved == pytest.approx(5.0)
        node.move_to((3.0, 5.0))
        assert node.distance_traveled == pytest.approx(6.0)

    def test_covers(self):
        node = Node(node_id=0, position=(0.0, 0.0), sensing_range=1.0)
        assert node.covers((0.5, 0.5))
        assert node.covers((1.0, 0.0))
        assert not node.covers((1.2, 0.0))

    def test_sensing_energy(self):
        node = Node(node_id=0, position=(0.0, 0.0), sensing_range=2.0)
        assert node.sensing_energy() == pytest.approx(4.0 * math.pi)

    def test_copy_is_independent(self):
        node = Node(node_id=0, position=(0.0, 0.0))
        clone = node.copy()
        clone.move_to((1.0, 0.0))
        assert node.position == (0.0, 0.0)

    def test_distance_to(self):
        node = Node(node_id=0, position=(1.0, 1.0))
        assert node.distance_to((4.0, 5.0)) == pytest.approx(5.0)


class TestEnergyModel:
    def test_paper_sensing_model(self):
        model = EnergyModel()
        assert model.sensing_energy(1.0) == pytest.approx(math.pi)
        assert model.sensing_energy(0.0) == 0.0

    def test_sensing_energy_negative_range_rejected(self):
        with pytest.raises(ValueError):
            EnergyModel().sensing_energy(-0.1)

    def test_custom_exponent(self):
        model = EnergyModel(sensing_exponent=3.0, sensing_prefactor=1.0)
        assert model.sensing_energy(2.0) == pytest.approx(8.0)

    def test_movement_energy(self):
        model = EnergyModel(movement_cost_per_unit=2.0)
        assert model.movement_energy(3.0) == pytest.approx(6.0)
        with pytest.raises(ValueError):
            model.movement_energy(-1.0)

    def test_communication_energy(self):
        model = EnergyModel(message_cost_per_hop=0.5)
        assert model.communication_energy(4) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            model.communication_energy(-1)

    def test_aggregates(self):
        model = EnergyModel()
        ranges = [1.0, 2.0, 0.5]
        loads = model.sensing_loads(ranges)
        assert len(loads) == 3
        assert model.max_load(ranges) == pytest.approx(4.0 * math.pi)
        assert model.total_load(ranges) == pytest.approx(math.pi * (1 + 4 + 0.25))

    def test_aggregates_empty(self):
        model = EnergyModel()
        assert model.max_load([]) == 0.0
        assert model.total_load([]) == 0.0
        assert model.load_imbalance([]) == 1.0

    def test_load_imbalance(self):
        model = EnergyModel()
        assert model.load_imbalance([1.0, 1.0]) == pytest.approx(1.0)
        assert model.load_imbalance([1.0, 2.0]) == pytest.approx(4.0)
        assert model.load_imbalance([0.0, 1.0]) == math.inf
        assert model.load_imbalance([0.0, 0.0]) == 1.0
