"""Unit tests for the metrics half of ``repro.obs``.

The exposition text is the contract — a Prometheus-compatible scraper
must ingest it — so most assertions run through ``validate_exposition``
and exact rendered lines rather than internal state.
"""

from __future__ import annotations

import threading

import pytest

from repro.obs.metrics import (
    CONTENT_TYPE,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    exposition,
    validate_exposition,
)


class TestCounter:
    def test_increments_and_rejects_negative(self):
        c = Counter("repro_things_total", "things")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError, match="only go up"):
            c.inc(-1)

    def test_concurrent_increments_are_lossless(self):
        c = Counter("repro_races_total")
        threads = [
            threading.Thread(target=lambda: [c.inc() for _ in range(1000)])
            for _ in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 4000

    def test_invalid_name_rejected(self):
        with pytest.raises(ValueError, match="invalid metric name"):
            Counter("bad-name")


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("repro_live")
        g.set(10)
        g.inc(5)
        g.dec(3)
        assert g.value == 12

    def test_set_function_reads_at_scrape(self):
        state = {"n": 1}
        g = Gauge("repro_derived")
        g.set_function(lambda: state["n"])
        assert g.value == 1
        state["n"] = 7
        assert g.value == 7  # one source of truth, read live


class TestHistogram:
    def test_cumulative_buckets_sum_count(self):
        h = Histogram("repro_latency_seconds", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            h.observe(v)
        assert h.count == 3
        assert h.sum == pytest.approx(5.55)
        rows = {(suffix, labels.get("le")): value
                for suffix, labels, value in h._samples()}
        assert rows[("_bucket", "0.1")] == 1
        assert rows[("_bucket", "1")] == 2  # cumulative, not per-bucket
        assert rows[("_bucket", "+Inf")] == 3
        assert rows[("_count", None)] == 3

    def test_boundary_lands_in_its_bucket(self):
        h = Histogram("repro_edges_seconds", buckets=(1.0,))
        h.observe(1.0)  # le is inclusive in the Prometheus model
        rows = {labels.get("le"): value
                for _, labels, value in h._samples() if _ == "_bucket"}
        assert rows["1"] == 1

    def test_empty_buckets_rejected(self):
        with pytest.raises(ValueError, match="at least one bucket"):
            Histogram("repro_empty_seconds", buckets=())


class TestLabels:
    def test_children_are_stable_and_rendered(self):
        registry = MetricsRegistry()
        c = registry.counter(
            "repro_http_requests_total", "requests", labelnames=("status",)
        )
        c.labels(200).inc(3)
        c.labels(404).inc()
        assert c.labels("200") is c.labels(200)  # values stringified
        text = registry.exposition()
        assert 'repro_http_requests_total{status="200"} 3' in text
        assert 'repro_http_requests_total{status="404"} 1' in text

    def test_label_arity_enforced(self):
        c = Counter("repro_pairs_total", labelnames=("a", "b"))
        with pytest.raises(ValueError, match="takes 2"):
            c.labels("only-one")
        plain = Counter("repro_plain_total")
        with pytest.raises(ValueError, match="no labels"):
            plain.labels("x")


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        first = registry.counter("repro_shared_total", "shared")
        second = registry.counter("repro_shared_total", "different help ignored")
        assert first is second

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("repro_clash_total")
        with pytest.raises(ValueError, match="already registered as counter"):
            registry.gauge("repro_clash_total")

    def test_exposition_is_valid_and_typed(self):
        registry = MetricsRegistry()
        registry.counter("repro_events_total", "events").inc(2)
        registry.gauge("repro_live_sessions", "live").set(4)
        registry.histogram(
            "repro_http_request_seconds", "latency", buckets=(0.01, 0.1)
        ).observe(0.05)
        text = registry.exposition()
        families = validate_exposition(text)
        assert families == {
            "repro_events_total": "counter",
            "repro_live_sessions": "gauge",
            "repro_http_request_seconds": "histogram",
        }
        assert text.endswith("\n")
        assert "version=0.0.4" in CONTENT_TYPE

    def test_multi_registry_first_wins(self):
        private = MetricsRegistry()
        shared = MetricsRegistry()
        private.counter("repro_dup_total", "private").inc(1)
        shared.counter("repro_dup_total", "shared").inc(9)
        shared.counter("repro_only_shared_total").inc(5)
        text = exposition(private, shared)
        assert "# HELP repro_dup_total private" in text
        assert "repro_dup_total 1" in text  # the private registry's value
        assert "repro_dup_total 9" not in text
        assert "repro_only_shared_total 5" in text
        validate_exposition(text)


class TestValidateExposition:
    def test_rejects_missing_trailing_newline(self):
        with pytest.raises(ValueError, match="newline"):
            validate_exposition("# TYPE repro_x_total counter\nrepro_x_total 1")

    def test_rejects_counter_without_total_suffix(self):
        with pytest.raises(ValueError, match="_total"):
            validate_exposition("# TYPE repro_x counter\nrepro_x 1\n")

    def test_rejects_undeclared_sample(self):
        with pytest.raises(ValueError, match="no TYPE"):
            validate_exposition("repro_mystery 1\n")

    def test_rejects_histogram_without_inf_bucket(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="1"} 1\n'
            "repro_h_sum 0.5\n"
            "repro_h_count 1\n"
        )
        with pytest.raises(ValueError, match=r"\+Inf"):
            validate_exposition(text)

    def test_rejects_unparseable_sample(self):
        with pytest.raises(ValueError, match="unparseable"):
            validate_exposition("# TYPE repro_x gauge\nrepro_x one\n")
