"""Unit tests for the trace-span half of ``repro.obs``.

The disabled path has a hard contract — one module-global check, no
allocation, no clock read — so these tests pin object identity and
monkeypatch the clock, not just observable timings.
"""

from __future__ import annotations

import concurrent.futures
import json
import time

import pytest

from repro.engine.profiling import StageTimer, profile_meta, profile_stages
from repro.obs import trace


@pytest.fixture(autouse=True)
def _tracing_off():
    """Every test starts and ends with tracing globally off."""
    trace.stop_tracing()
    yield
    trace.stop_tracing()


def _by_name(rows, name):
    return [row for row in rows if row["name"] == name]


class TestDisabledPath:
    def test_span_returns_shared_noop(self):
        first = trace.span("anything", key="value")
        second = trace.span("other")
        assert first is second  # one shared object, no allocation

    def test_noop_span_is_inert_context_manager(self):
        with trace.span("untraced") as handle:
            assert handle is trace.span("still-untraced")

    def test_annotate_is_noop(self):
        trace.annotate(method="GET")  # must not raise, must not allocate state
        assert trace.current_collector() is None
        assert not trace.tracing_active()

    def test_disabled_stage_timer_reads_no_clock(self, monkeypatch):
        timer = StageTimer(enabled=False)

        def forbidden():  # pragma: no cover - the assertion is the call
            raise AssertionError("disabled StageTimer must not read the clock")

        monkeypatch.setattr(time, "perf_counter", forbidden)
        with timer.stage("query"):
            pass
        assert timer.result() is None

    def test_wrap_chunk_tasks_preserves_results_untraced(self):
        tasks = [lambda i=i: i * i for i in range(5)]
        wrapped = trace.wrap_chunk_tasks(tasks)
        assert [task() for task in wrapped] == [0, 1, 4, 9, 16]


class TestSpanRecording:
    def test_nesting_parents_and_attrs(self):
        with trace.tracing() as collector:
            with trace.span("outer", round=3):
                with trace.span("inner", stage="clip"):
                    pass
            with trace.span("sibling"):
                pass
        rows = collector.rows()
        outer = _by_name(rows, "outer")[0]
        inner = _by_name(rows, "inner")[0]
        sibling = _by_name(rows, "sibling")[0]
        assert outer["parent"] == 0 and sibling["parent"] == 0
        assert inner["parent"] == outer["id"]
        assert outer["args"] == {"round": 3}
        assert inner["args"] == {"stage": "clip"}
        assert all(row["dur"] >= 0.0 for row in rows)

    def test_annotate_reaches_innermost_open_span(self):
        with trace.tracing() as collector:
            with trace.span("request"):
                with trace.span("route"):
                    trace.annotate(path="/stats")
                trace.annotate(status=200)
        rows = collector.rows()
        assert _by_name(rows, "route")[0]["args"] == {"path": "/stats"}
        assert _by_name(rows, "request")[0]["args"] == {"status": 200}

    def test_start_twice_rejected(self):
        trace.start_tracing()
        with pytest.raises(RuntimeError):
            trace.start_tracing()

    def test_stop_returns_active_collector(self):
        collector = trace.start_tracing()
        assert trace.stop_tracing() is collector
        assert trace.stop_tracing() is None

    def test_span_survives_exception(self):
        with trace.tracing() as collector:
            with pytest.raises(ValueError):
                with trace.span("failing"):
                    raise ValueError("boom")
        assert len(collector) == 1  # recorded despite the raise


class TestChunkPropagation:
    def test_chunk_spans_parented_across_executor_threads(self):
        with trace.tracing() as collector:
            with trace.span("clip") as parent:
                tasks = trace.wrap_chunk_tasks(
                    [lambda i=i: i + 10 for i in range(4)]
                )
                with concurrent.futures.ThreadPoolExecutor(2) as pool:
                    results = list(pool.map(lambda t: t(), tasks))
        assert results == [10, 11, 12, 13]
        chunks = _by_name(collector.rows(), "chunk")
        assert len(chunks) == 4
        assert {row["parent"] for row in chunks} == {parent.span_id}
        assert sorted(row["args"]["seq"] for row in chunks) == [0, 1, 2, 3]


class TestCollectingAndAdopt:
    def test_collecting_isolates_and_restores(self):
        outer = trace.start_tracing()
        with trace.span("outer-open"):
            with trace.collecting() as local:
                # The worker-side collector replaces the global one and
                # clears the inherited current span: locally recorded
                # spans are roots.
                assert trace.current_collector() is local
                with trace.span("worker-span"):
                    pass
            assert trace.current_collector() is outer
        assert [row["name"] for row in local.rows()] == ["worker-span"]
        assert local.rows()[0]["parent"] == 0
        assert _by_name(outer.rows(), "worker-span") == []

    def test_adopt_remaps_ids_and_reparents_roots(self):
        with trace.tracing() as worker:
            with trace.span("cell"):
                with trace.span("stage"):
                    pass
        rows = worker.rows()

        parent = trace.TraceCollector()
        with trace.tracing(parent):
            with trace.span("sweep") as sweep:
                sweep_id = sweep.span_id
        parent.adopt(rows, parent_id=sweep_id)

        adopted = parent.rows()
        cell = _by_name(adopted, "cell")[0]
        stage = _by_name(adopted, "stage")[0]
        assert cell["parent"] == sweep_id  # foreign root re-parented
        assert stage["parent"] == cell["id"]  # internal edge remapped
        ids = [row["id"] for row in adopted]
        assert len(ids) == len(set(ids))  # no collisions after remap


class TestExport:
    def _sample_collector(self):
        collector = trace.TraceCollector()
        with trace.tracing(collector):
            with trace.span("round", index=0):
                with trace.span("clip"):
                    pass
        return collector

    def test_jsonl_round_trip(self, tmp_path):
        collector = self._sample_collector()
        path = tmp_path / "trace.jsonl"
        collector.write(str(path))
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert [row["name"] for row in rows] == ["clip", "round"]
        for row in rows:
            assert set(row) == {
                "name", "id", "parent", "ts", "dur", "pid", "tid",
                "thread", "args",
            }

    def test_chrome_export_validates_and_links_spans(self, tmp_path):
        collector = self._sample_collector()
        path = tmp_path / "trace.json"
        collector.write(str(path))
        payload = json.loads(path.read_text())
        assert trace.validate_chrome_trace(payload) == len(
            payload["traceEvents"]
        )
        complete = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        meta = [e for e in payload["traceEvents"] if e["ph"] == "M"]
        assert {e["name"] for e in complete} == {"round", "clip"}
        assert meta and all(e["name"] == "thread_name" for e in meta)
        clip = next(e for e in complete if e["name"] == "clip")
        rnd = next(e for e in complete if e["name"] == "round")
        assert clip["args"]["parent_id"] == rnd["args"]["span_id"]
        assert payload["displayTimeUnit"] == "ms"

    def test_validate_chrome_trace_rejects_malformed(self):
        with pytest.raises(ValueError, match="traceEvents"):
            trace.validate_chrome_trace({})
        with pytest.raises(ValueError, match="phase"):
            trace.validate_chrome_trace(
                {"traceEvents": [{"ph": "Q", "name": "x"}]}
            )
        with pytest.raises(ValueError, match="lacks"):
            trace.validate_chrome_trace(
                {"traceEvents": [{"ph": "X", "name": "x"}]}
            )
        with pytest.raises(ValueError, match="negative"):
            trace.validate_chrome_trace(
                {
                    "traceEvents": [
                        {
                            "name": "x", "ph": "X", "ts": -1.0, "dur": 0.0,
                            "pid": 1, "tid": 1, "args": {},
                        }
                    ]
                }
            )


class TestStageTimerMatrix:
    """StageTimer x REPRO_PROFILE x tracing: one clock, two projections."""

    def test_profile_only(self):
        timer = StageTimer(enabled=True)
        with timer.stage("query"):
            pass
        with timer.stage("query"):
            pass
        profile = timer.result(tier="numpy", threads=1)
        assert set(profile) == {"query", "meta"}
        assert profile["query"] >= 0.0
        assert profile["meta"] == {"tier": "numpy", "threads": 1}

    def test_trace_only_emits_stage_spans(self):
        timer = StageTimer(enabled=False)
        with trace.tracing() as collector:
            with timer.stage("clip"):
                pass
        assert [row["name"] for row in collector.rows()] == ["clip"]
        assert timer.result() is None

    def test_both_share_the_span_clock(self):
        timer = StageTimer(enabled=True)
        with trace.tracing() as collector:
            with timer.stage("emit"):
                pass
        profile = timer.result()
        row = collector.rows()[0]
        assert profile["emit"] == row["dur"]  # identical measurement

    def test_profile_stages_and_meta_helpers(self):
        profile = {"query": 0.5, "clip": 0.25, "meta": {"tier": "jit"}}
        assert profile_stages(profile) == {"query": 0.5, "clip": 0.25}
        assert profile_meta(profile) == {"tier": "jit"}
        assert profile_stages(None) == {}
        assert profile_meta({}) == {}
