"""Property-based tests (hypothesis) for the geometric core and its invariants.

These target the data structures and invariants everything else rests on:
Welzl circles, convex hulls, half-plane clipping, the dominating-region
engine (checked against the raster oracle and against the k * |A| tiling
identity), and the coverage checker.
"""

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.analysis.coverage import coverage_counts
from repro.geometry.chebyshev import chebyshev_center_of_points
from repro.geometry.clipping import HalfPlane, clip_polygon_halfplane, halfplane_from_bisector
from repro.geometry.convex import convex_hull, is_convex_polygon
from repro.geometry.polygon import point_in_polygon, polygon_area
from repro.geometry.primitives import distance
from repro.geometry.welzl import welzl_disk
from repro.regions.shapes import unit_square
from repro.voronoi.dominating import compute_dominating_region, dominating_pieces
from repro.voronoi.raster import RasterOracle

# Coordinates are drawn from a bounded range so that areas and distances
# stay within a few orders of magnitude of 1 (the paper's km scale).
coord = st.floats(min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False)
unit_coord = st.floats(min_value=0.01, max_value=0.99, allow_nan=False, allow_infinity=False)
point = st.tuples(coord, coord)
unit_point = st.tuples(unit_coord, unit_coord)

COMMON_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestWelzlProperties:
    @COMMON_SETTINGS
    @given(st.lists(point, min_size=1, max_size=40))
    def test_all_points_enclosed(self, points):
        circle = welzl_disk(points)
        slack = 1e-7 * max(1.0, circle.radius)
        assert all(distance(circle.center, p) <= circle.radius + slack for p in points)

    @COMMON_SETTINGS
    @given(st.lists(point, min_size=2, max_size=25))
    def test_radius_bounded_by_diameter(self, points):
        circle = welzl_disk(points)
        diameter = max(
            distance(p, q) for p in points for q in points
        )
        assert circle.radius <= diameter / math.sqrt(3.0) + 1e-7
        assert circle.radius >= diameter / 2.0 - 1e-7

    @COMMON_SETTINGS
    @given(st.lists(point, min_size=1, max_size=20), point)
    def test_adding_interior_point_keeps_circle(self, points, extra):
        circle = welzl_disk(points)
        assume(distance(circle.center, extra) < circle.radius * 0.9)
        enlarged = welzl_disk(points + [extra])
        assert enlarged.radius == pytest.approx(circle.radius, rel=1e-6, abs=1e-9)


class TestChebyshevProperties:
    @COMMON_SETTINGS
    @given(st.lists(point, min_size=1, max_size=30))
    def test_center_is_minimax(self, points):
        center, radius = chebyshev_center_of_points(points)
        worst = max(distance(center, p) for p in points)
        assert worst <= radius + 1e-7 * max(1.0, radius)
        # The centroid can never beat the Chebyshev center.
        cx = sum(p[0] for p in points) / len(points)
        cy = sum(p[1] for p in points) / len(points)
        assert max(distance((cx, cy), p) for p in points) >= radius - 1e-7 * max(1.0, radius)


class TestConvexHullProperties:
    @COMMON_SETTINGS
    @given(st.lists(point, min_size=3, max_size=40))
    def test_hull_contains_all_points(self, points):
        hull = convex_hull(points)
        assume(len(hull) >= 3)
        assert is_convex_polygon(hull)
        for p in points:
            assert point_in_polygon(p, hull, include_boundary=True, eps=1e-6)

    @COMMON_SETTINGS
    @given(st.lists(point, min_size=3, max_size=30))
    def test_hull_idempotent(self, points):
        hull = convex_hull(points)
        assume(len(hull) >= 3)
        assert polygon_area(convex_hull(hull)) == pytest.approx(polygon_area(hull), rel=1e-9)


class TestClippingProperties:
    @COMMON_SETTINGS
    @given(
        st.floats(min_value=-1.0, max_value=1.0, allow_nan=False),
        st.floats(min_value=-1.0, max_value=1.0, allow_nan=False),
        st.floats(min_value=-0.5, max_value=1.5, allow_nan=False),
    )
    def test_halfplane_partitions_square(self, a, b, c):
        assume(abs(a) + abs(b) > 1e-3)
        square = [(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)]
        hp = HalfPlane(a, b, c)
        left = clip_polygon_halfplane(square, hp)
        right = clip_polygon_halfplane(square, hp.flipped())
        assert polygon_area(left) + polygon_area(right) == pytest.approx(1.0, abs=1e-6)

    @COMMON_SETTINGS
    @given(unit_point, unit_point)
    def test_bisector_halfplanes_are_complementary(self, p, q):
        assume(distance(p, q) > 1e-3)
        square = [(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)]
        hp = halfplane_from_bisector(p, q)
        closer_p = clip_polygon_halfplane(square, hp)
        closer_q = clip_polygon_halfplane(square, hp.flipped())
        assert polygon_area(closer_p) + polygon_area(closer_q) == pytest.approx(1.0, abs=1e-6)
        if len(closer_p) >= 3:
            assert point_in_polygon(p, closer_p, include_boundary=True, eps=1e-6) or (
                not point_in_polygon(p, square, include_boundary=False)
            )


class TestDominatingRegionProperties:
    @COMMON_SETTINGS
    @given(
        st.lists(unit_point, min_size=4, max_size=12, unique=True),
        st.integers(min_value=1, max_value=3),
    )
    def test_tiling_identity(self, sites, k):
        """Sum of dominating-region areas equals k * |A| (each point has exactly k dominators)."""
        assume(len(sites) >= k + 1)
        # The identity assumes sites in general position: for (nearly)
        # coincident sites the shared cell is claimed by both on ties and
        # the areas double-count, which is a degeneracy of the statement,
        # not of the construction.
        assume(
            min(
                distance(p, q)
                for i, p in enumerate(sites)
                for q in sites[i + 1 :]
            )
            > 1e-6
        )
        region = unit_square()
        total = 0.0
        for i, site in enumerate(sites):
            others = [s for j, s in enumerate(sites) if j != i]
            total += compute_dominating_region(site, others, region, k).area
        assert total == pytest.approx(k * region.area, rel=1e-3)

    @COMMON_SETTINGS
    @given(
        st.lists(unit_point, min_size=3, max_size=10, unique=True),
        st.integers(min_value=1, max_value=3),
    )
    def test_monotone_in_k(self, sites, k):
        """The dominating region for k+1 contains the one for k (area can only grow)."""
        region = unit_square()
        site, others = sites[0], sites[1:]
        smaller = compute_dominating_region(site, others, region, k).area
        larger = compute_dominating_region(site, others, region, k + 1).area
        assert larger >= smaller - 1e-9

    @COMMON_SETTINGS
    @given(st.lists(unit_point, min_size=4, max_size=10, unique=True))
    def test_site_in_own_region(self, sites):
        region = unit_square()
        site, others = sites[0], sites[1:]
        dom = compute_dominating_region(site, others, region, 1)
        assert dom.contains(site, eps=1e-6)

    @COMMON_SETTINGS
    @given(
        st.lists(unit_point, min_size=5, max_size=10, unique=True),
        st.integers(min_value=1, max_value=3),
    )
    def test_agrees_with_raster_oracle(self, sites, k):
        assume(len(sites) > k)
        region = unit_square()
        oracle = RasterOracle(sites, region, resolution=15)
        dom = compute_dominating_region(sites[0], sites[1:], region, k)
        mask = oracle.dominating_mask(0, k)
        for sample, inside in zip(oracle.samples, mask):
            sample_t = tuple(sample)
            own = distance(sample_t, sites[0])
            margin = min(abs(distance(sample_t, s) - own) for s in sites[1:])
            if margin <= 1e-6:
                continue  # too close to a bisector for a robust comparison
            assert dom.contains(sample_t, eps=1e-7) == bool(inside)


class TestCoverageProperties:
    @COMMON_SETTINGS
    @given(
        st.lists(unit_point, min_size=1, max_size=10),
        st.floats(min_value=0.05, max_value=0.8, allow_nan=False),
    )
    def test_coverage_monotone_in_range(self, sites, radius):
        region = unit_square()
        samples = np.asarray(region.grid_points(12), dtype=float)
        small = coverage_counts(sites, [radius] * len(sites), samples)
        large = coverage_counts(sites, [radius * 1.5] * len(sites), samples)
        assert np.all(large >= small)

    @COMMON_SETTINGS
    @given(st.lists(unit_point, min_size=2, max_size=10))
    def test_coverage_counts_bounded_by_node_count(self, sites):
        region = unit_square()
        samples = np.asarray(region.grid_points(10), dtype=float)
        counts = coverage_counts(sites, [2.0] * len(sites), samples)
        assert np.all(counts == len(sites))
