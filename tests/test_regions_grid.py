"""Unit tests for repro.regions.grid.GridSampler."""

import numpy as np
import pytest

from repro.regions.grid import GridSampler
from repro.regions.shapes import figure8_region_one, unit_square


class TestGridSampler:
    def test_point_count_square(self):
        sampler = GridSampler(unit_square(), resolution=10)
        assert len(sampler) == 100

    def test_points_are_inside(self):
        region = figure8_region_one()
        sampler = GridSampler(region, resolution=25)
        for x, y in sampler.as_list():
            assert region.contains((x, y))

    def test_hole_points_excluded(self):
        region = figure8_region_one()
        sampler = GridSampler(region, resolution=41)
        pts = sampler.points
        in_hole = (
            (pts[:, 0] > 0.41) & (pts[:, 0] < 0.59) & (pts[:, 1] > 0.41) & (pts[:, 1] < 0.59)
        )
        assert not np.any(in_hole)

    def test_cell_size(self):
        sampler = GridSampler(unit_square(), resolution=11)
        assert sampler.cell_size == pytest.approx(0.1)

    def test_points_cached(self):
        sampler = GridSampler(unit_square(), resolution=5)
        assert sampler.points is sampler.points

    def test_resolution_validation(self):
        with pytest.raises(ValueError):
            GridSampler(unit_square(), resolution=1)

    def test_as_list_matches_points(self):
        sampler = GridSampler(unit_square(), resolution=6)
        assert len(sampler.as_list()) == sampler.points.shape[0]
