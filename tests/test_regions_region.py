"""Unit tests for repro.regions.region.Region."""

import math

import numpy as np
import pytest

from repro.geometry.polygon import polygon_area
from repro.regions.region import Region
from repro.regions.shapes import square_region, unit_square


class TestConstruction:
    def test_too_few_outer_vertices_rejected(self):
        with pytest.raises(ValueError):
            Region([(0, 0), (1, 0)])

    def test_too_few_hole_vertices_rejected(self):
        with pytest.raises(ValueError):
            Region([(0, 0), (1, 0), (1, 1), (0, 1)], holes=[[(0.4, 0.4), (0.6, 0.4)]])

    def test_outer_stored_ccw(self):
        clockwise = [(0, 0), (0, 1), (1, 1), (1, 0)]
        region = Region(clockwise)
        from repro.geometry.polygon import signed_area

        assert signed_area(region.outer) > 0

    def test_repr_contains_name(self):
        assert "unit" in repr(unit_square("unit")).lower()


class TestMeasures:
    def test_unit_square_area(self):
        assert unit_square().area == pytest.approx(1.0)

    def test_area_subtracts_holes(self, holed_region):
        assert holed_region.area == pytest.approx(1.0 - 0.04)

    def test_bbox(self):
        region = square_region(2.0, origin=(1.0, 1.0))
        assert region.bbox == (1.0, 1.0, 3.0, 3.0)

    def test_diameter(self):
        assert unit_square().diameter == pytest.approx(math.sqrt(2.0))


class TestContainment:
    def test_interior_point(self, square):
        assert square.contains((0.5, 0.5))

    def test_exterior_point(self, square):
        assert not square.contains((1.5, 0.5))

    def test_hole_interior_excluded(self, holed_region):
        assert not holed_region.contains((0.5, 0.5))

    def test_point_outside_hole_included(self, holed_region):
        assert holed_region.contains((0.1, 0.1))

    def test_boundary_point(self, square):
        assert square.contains((0.0, 0.5))
        assert not square.contains((0.0, 0.5), include_boundary=False)


class TestDistancesAndProjection:
    def test_distance_to_boundary_center(self, square):
        assert square.distance_to_boundary((0.5, 0.5)) == pytest.approx(0.5)

    def test_distance_to_boundary_considers_holes(self, holed_region):
        # point near the hole edge (hole spans 0.40..0.60)
        assert holed_region.distance_to_boundary((0.35, 0.5)) == pytest.approx(0.05, abs=1e-9)

    def test_nearest_free_point_identity_for_free_points(self, square):
        assert square.nearest_free_point((0.3, 0.3)) == (0.3, 0.3)

    def test_nearest_free_point_outside_region(self, square):
        projected = square.nearest_free_point((1.5, 0.5))
        assert square.contains(projected)
        assert projected[0] == pytest.approx(1.0, abs=1e-6)

    def test_nearest_free_point_inside_hole(self, holed_region):
        projected = holed_region.nearest_free_point((0.5, 0.5))
        assert holed_region.contains(projected)
        # The projection lands on the hole boundary (0.1 away from center).
        assert math.hypot(projected[0] - 0.5, projected[1] - 0.5) == pytest.approx(0.1, abs=0.02)


class TestDecompositionAndClipping:
    def test_convex_pieces_tile_free_area(self, complex_region):
        pieces = complex_region.convex_pieces()
        assert sum(polygon_area(p) for p in pieces) == pytest.approx(complex_region.area)

    def test_convex_pieces_cached(self, square):
        assert square.convex_pieces() is square.convex_pieces()

    def test_clip_convex_inside(self, square):
        window = [(0.2, 0.2), (0.4, 0.2), (0.4, 0.4), (0.2, 0.4)]
        pieces = square.clip_convex(window)
        assert sum(polygon_area(p) for p in pieces) == pytest.approx(0.04)

    def test_clip_convex_respects_holes(self, holed_region):
        window = [(0.3, 0.3), (0.7, 0.3), (0.7, 0.7), (0.3, 0.7)]
        pieces = holed_region.clip_convex(window)
        assert sum(polygon_area(p) for p in pieces) == pytest.approx(0.16 - 0.04)

    def test_clip_convex_outside_is_empty(self, square):
        window = [(2.0, 2.0), (3.0, 2.0), (3.0, 3.0), (2.0, 3.0)]
        assert square.clip_convex(window) == []


class TestSampling:
    def test_grid_points_inside(self, holed_region):
        pts = holed_region.grid_points(21)
        assert pts
        assert all(holed_region.contains(p) for p in pts)
        assert all(not (0.42 < x < 0.58 and 0.42 < y < 0.58) for x, y in pts)

    def test_grid_resolution_validation(self, square):
        with pytest.raises(ValueError):
            square.grid_points(1)

    def test_random_points_inside(self, complex_region, rng):
        pts = complex_region.random_points(50, rng=rng)
        assert len(pts) == 50
        assert all(complex_region.contains(p) for p in pts)

    def test_random_points_negative_count_rejected(self, square):
        with pytest.raises(ValueError):
            square.random_points(-1)

    def test_random_points_deterministic_with_seed(self, square):
        a = square.random_points(5, rng=np.random.default_rng(9))
        b = square.random_points(5, rng=np.random.default_rng(9))
        assert a == b

    def test_vertices_include_holes(self, holed_region):
        assert len(holed_region.vertices()) == 4 + 4
