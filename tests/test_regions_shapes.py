"""Unit tests for repro.regions.shapes and obstacle helpers."""

import pytest

from repro.regions.obstacles import (
    rectangular_obstacle,
    regular_polygon_obstacle,
    total_obstacle_area,
    validate_obstacles,
)
from repro.regions.region import Region
from repro.regions.shapes import (
    cross_region,
    figure8_region_one,
    figure8_region_two,
    l_shaped_region,
    rectangle_region,
    square_region,
    square_with_obstacles,
    unit_square,
)


class TestBasicShapes:
    def test_unit_square(self):
        region = unit_square()
        assert region.area == pytest.approx(1.0)
        assert region.bbox == (0.0, 0.0, 1.0, 1.0)

    def test_rectangle(self):
        region = rectangle_region(2.0, 3.0, origin=(1.0, 1.0))
        assert region.area == pytest.approx(6.0)
        assert region.bbox == (1.0, 1.0, 3.0, 4.0)

    def test_rectangle_invalid_dimensions(self):
        with pytest.raises(ValueError):
            rectangle_region(0.0, 1.0)

    def test_square(self):
        assert square_region(2.5).area == pytest.approx(6.25)

    def test_l_shape_area(self):
        region = l_shaped_region(size=1.0, notch_fraction=0.5)
        assert region.area == pytest.approx(0.75)

    def test_l_shape_invalid_notch(self):
        with pytest.raises(ValueError):
            l_shaped_region(notch_fraction=1.5)

    def test_l_shape_notch_excluded(self):
        region = l_shaped_region(size=1.0, notch_fraction=0.5)
        assert not region.contains((0.9, 0.9))
        assert region.contains((0.25, 0.25))

    def test_cross_area(self):
        region = cross_region(size=1.0, arm_fraction=0.4)
        # cross = 2 arms of 1.0 x 0.4 minus the overlapping 0.4 x 0.4 center
        assert region.area == pytest.approx(2 * 0.4 - 0.16)

    def test_cross_invalid_arm(self):
        with pytest.raises(ValueError):
            cross_region(arm_fraction=0.0)

    def test_cross_corners_excluded(self):
        region = cross_region()
        assert not region.contains((0.05, 0.05))
        assert region.contains((0.5, 0.05))


class TestObstacleShapes:
    def test_square_with_obstacles(self):
        hole = rectangular_obstacle(0.2, 0.2, 0.4, 0.4)
        region = square_with_obstacles(1.0, obstacles=[hole])
        assert region.area == pytest.approx(1.0 - 0.04)

    def test_figure8_region_one(self):
        region = figure8_region_one()
        assert len(region.holes) == 1
        assert not region.contains((0.5, 0.5))

    def test_figure8_region_two(self):
        region = figure8_region_two()
        assert len(region.holes) == 2
        assert region.area < 1.0

    def test_rectangular_obstacle_validation(self):
        with pytest.raises(ValueError):
            rectangular_obstacle(0.5, 0.5, 0.4, 0.6)

    def test_regular_polygon_obstacle(self):
        hexagon = regular_polygon_obstacle((0.5, 0.5), 0.1, sides=6)
        assert len(hexagon) == 6

    def test_regular_polygon_obstacle_validation(self):
        with pytest.raises(ValueError):
            regular_polygon_obstacle((0, 0), 0.1, sides=2)
        with pytest.raises(ValueError):
            regular_polygon_obstacle((0, 0), -0.1)

    def test_validate_obstacles_accepts_valid(self):
        validate_obstacles(figure8_region_one())

    def test_validate_obstacles_rejects_outside(self):
        bad = Region(
            [(0, 0), (1, 0), (1, 1), (0, 1)],
            holes=[[(0.9, 0.9), (1.5, 0.9), (1.5, 1.5), (0.9, 1.5)]],
        )
        with pytest.raises(ValueError):
            validate_obstacles(bad)

    def test_total_obstacle_area(self):
        region = figure8_region_one()
        assert total_obstacle_area(region) == pytest.approx(0.04)
