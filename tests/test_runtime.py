"""Unit tests for the distributed runtime: messages, scheduler, agents, failures."""

import numpy as np
import pytest

from repro.core.config import LaacadConfig
from repro.network.network import SensorNetwork
from repro.regions.shapes import unit_square
from repro.runtime.failures import FailureInjector
from repro.runtime.messages import (
    HEADER_BYTES,
    Message,
    MessageKind,
    convergence_vote,
    position_report,
    ring_query,
)
from repro.api import Simulation
from repro.runtime.protocol import LaacadAgent
from repro.runtime.scheduler import SynchronousScheduler


class TestMessages:
    def test_message_validation(self):
        with pytest.raises(ValueError):
            Message(MessageKind.RING_QUERY, 0, 1, {}, hops=0)
        with pytest.raises(ValueError):
            Message(MessageKind.RING_QUERY, 0, 1, {}, size_bytes=0)

    def test_message_ids_unique(self):
        a = ring_query(0, 1, 0.5, 1)
        b = ring_query(0, 1, 0.5, 1)
        assert a.message_id != b.message_id

    def test_ring_query_payload(self):
        msg = ring_query(3, 7, 0.25, 2)
        assert msg.kind is MessageKind.RING_QUERY
        assert msg.payload["radius"] == 0.25
        assert msg.hops == 2
        assert msg.size_bytes > HEADER_BYTES

    def test_position_report_payload(self):
        msg = position_report(1, 2, (0.3, 0.4), 3)
        assert msg.kind is MessageKind.POSITION_REPORT
        assert msg.payload["position"] == (0.3, 0.4)

    def test_convergence_vote(self):
        msg = convergence_vote(0, 1, True)
        assert msg.payload["settled"] is True
        assert msg.hops == 1


class TestScheduler:
    def test_send_and_collect(self):
        sched = SynchronousScheduler()
        sched.send(ring_query(0, 1, 0.5, 2))
        inbox = sched.collect_inbox(1)
        assert len(inbox) == 1
        assert sched.collect_inbox(1) == []

    def test_accounting(self):
        sched = SynchronousScheduler()
        msg = position_report(0, 1, (0.1, 0.2), 3)
        sched.send(msg)
        assert sched.stats.messages == 1
        assert sched.stats.transmissions == 3
        assert sched.stats.bytes_sent == msg.size_bytes * 3

    def test_round_bookkeeping(self):
        sched = SynchronousScheduler()
        assert sched.begin_round() == 0
        sched.send(ring_query(0, 1, 0.5, 1))
        sched.end_round()
        assert sched.stats.per_round_messages == [1]
        assert sched.begin_round() == 1

    def test_drop_probability(self):
        sched = SynchronousScheduler(drop_probability=0.5, rng=np.random.default_rng(0))
        delivered = sum(
            1 for _ in range(200) if sched.send(ring_query(0, 1, 0.5, 1))
        )
        assert 50 < delivered < 150
        assert sched.stats.dropped == 200 - delivered

    def test_drop_probability_validation(self):
        with pytest.raises(ValueError):
            SynchronousScheduler(drop_probability=1.0)

    def test_reset(self):
        sched = SynchronousScheduler()
        sched.begin_round()
        sched.send(ring_query(0, 1, 0.5, 1))
        sched.end_round()
        sched.reset()
        assert sched.stats.messages == 0
        assert sched.collect_inbox(1) == []
        assert sched.current_round == -1

    def test_record_counts_like_send(self):
        # The counting fast path must account exactly like send() —
        # same counters, no Message, nothing delivered.
        by_send = SynchronousScheduler()
        by_send.begin_round()
        by_send.send(ring_query(0, 1, 0.5, 2))
        by_send.send(position_report(1, 0, (0.3, 0.4), 2))
        by_record = SynchronousScheduler()
        by_record.begin_round()
        for msg in (ring_query(0, 1, 0.5, 2), position_report(1, 0, (0.3, 0.4), 2)):
            assert by_record.record(msg.hops, msg.size_bytes)
        assert by_record.stats.messages == by_send.stats.messages
        assert by_record.stats.transmissions == by_send.stats.transmissions
        assert by_record.stats.bytes_sent == by_send.stats.bytes_sent
        assert by_record.collect_inbox(1) == []

    def test_record_draws_the_same_loss_stream_as_send(self):
        lossy_send = SynchronousScheduler(
            drop_probability=0.4, rng=np.random.default_rng(3)
        )
        lossy_record = SynchronousScheduler(
            drop_probability=0.4, rng=np.random.default_rng(3)
        )
        sent = [lossy_send.send(ring_query(0, 1, 0.5, 1)) for _ in range(100)]
        recorded = [lossy_record.record(1, 20) for _ in range(100)]
        assert sent == recorded
        assert lossy_send.stats.dropped == lossy_record.stats.dropped

    def test_record_many_matches_scalar_records(self):
        hops = np.asarray([1, 3, 2, 5, 1, 1])
        sizes = np.asarray([20, 24, 20, 24, 20, 24])
        scalar = SynchronousScheduler(
            drop_probability=0.5, rng=np.random.default_rng(9)
        )
        batched = SynchronousScheduler(
            drop_probability=0.5, rng=np.random.default_rng(9)
        )
        scalar.begin_round()
        batched.begin_round()
        expected = [scalar.record(int(h), int(s)) for h, s in zip(hops, sizes)]
        delivered = batched.record_many(hops, sizes)
        assert list(delivered) == expected
        assert batched.stats == scalar.stats
        assert batched.record_many(np.asarray([], dtype=int), np.asarray([], dtype=int)).shape == (0,)

    def test_record_many_loss_free_draws_nothing(self):
        sched = SynchronousScheduler(rng=np.random.default_rng(5))
        state_before = sched._rng.bit_generator.state
        delivered = sched.record_many(np.asarray([2, 2]), np.asarray([20, 24]))
        assert delivered.all()
        assert sched._rng.bit_generator.state == state_before
        assert sched.stats.messages == 2
        assert sched.stats.transmissions == 4
        assert sched.stats.bytes_sent == 2 * 20 + 2 * 24


class TestFailureInjector:
    def test_scheduled_failures(self, square):
        net = SensorNetwork(square, [(0.1, 0.1), (0.5, 0.5), (0.9, 0.9)], comm_range=0.3)
        injector = FailureInjector(scheduled={2: [0, 1]})
        assert injector.apply(net, 0) == []
        killed = injector.apply(net, 2)
        assert set(killed) == {0, 1}
        assert injector.total_killed() == 2
        assert not net.node(0).alive

    def test_double_kill_is_idempotent(self, square):
        net = SensorNetwork(square, [(0.1, 0.1), (0.5, 0.5)], comm_range=0.3)
        injector = FailureInjector(scheduled={0: [0], 1: [0]})
        injector.apply(net, 0)
        assert injector.apply(net, 1) == []

    def test_random_failures(self, square):
        net = SensorNetwork(square, [(0.1 * i, 0.5) for i in range(1, 10)], comm_range=0.3)
        injector = FailureInjector(random_failure_rate=0.5, rng=np.random.default_rng(1))
        injector.apply(net, 0)
        assert 0 < injector.total_killed() < 9

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            FailureInjector(random_failure_rate=1.5)

    def test_from_dict_coerces_json_keys(self, square):
        # Scenario specs round-trip through JSON, which stringifies the
        # round indices; from_dict must coerce them back.
        injector = FailureInjector.from_dict(
            {"scheduled": {"2": [0, 1]}, "random_failure_rate": 0.0, "seed": 3}
        )
        assert injector.scheduled == {2: [0, 1]}
        net = SensorNetwork(square, [(0.1, 0.1), (0.5, 0.5), (0.9, 0.9)], comm_range=0.3)
        assert set(injector.apply(net, 2)) == {0, 1}

    def test_from_dict_defaults_and_validation(self):
        injector = FailureInjector.from_dict({})
        assert injector.scheduled == {}
        assert injector.random_failure_rate == 0.0
        with pytest.raises(ValueError, match="unknown failure options"):
            FailureInjector.from_dict({"cadence": 3})
        with pytest.raises(ValueError):
            FailureInjector.from_dict({"random_failure_rate": 2.0})

    def test_from_dict_random_failures_are_seeded(self, square):
        spec = {"random_failure_rate": 0.5, "seed": 7}

        def run():
            net = SensorNetwork(
                square, [(0.1 * i, 0.5) for i in range(1, 10)], comm_range=0.3
            )
            injector = FailureInjector.from_dict(spec)
            injector.apply(net, 0)
            return injector.killed

        assert run() == run()


class TestLaacadAgent:
    def test_dead_agent_is_inert(self, square):
        net = SensorNetwork(square, [(0.2, 0.2), (0.8, 0.8)], comm_range=0.3)
        sched = SynchronousScheduler()
        config = LaacadConfig(k=1, max_rounds=5)
        agent = LaacadAgent(0, net, sched, config)
        net.kill_node(0)
        agent.step(0)
        assert agent.last_region is None
        assert agent.proposed_target is None

    def test_agent_proposes_move_towards_center(self, square):
        net = SensorNetwork(square, [(0.1, 0.1), (0.9, 0.9)], comm_range=0.4)
        sched = SynchronousScheduler()
        config = LaacadConfig(k=1, max_rounds=5)
        agent = LaacadAgent(0, net, sched, config)
        agent.step(0)
        assert agent.last_region is not None
        assert agent.proposed_target is not None
        assert sched.stats.messages > 0


class TestDistributedRunner:
    def test_requires_enough_nodes(self, square):
        net = SensorNetwork(square, [(0.5, 0.5)], comm_range=0.3)
        with pytest.raises(ValueError):
            Simulation(
                network=net, config=LaacadConfig(k=2, max_rounds=5), kind="distributed"
            )

    def test_run_produces_coverage(self, square):
        from repro.analysis.coverage import is_k_covered

        net = SensorNetwork.from_random(
            square, 14, comm_range=0.35, rng=np.random.default_rng(2)
        )
        config = LaacadConfig(k=2, alpha=1.0, epsilon=2e-3, max_rounds=40)
        result = Simulation(network=net, config=config, kind="distributed").run()
        assert result.communication.messages > 0
        assert is_k_covered(
            result.final_positions, result.sensing_ranges, square, 2, resolution=40
        )

    def test_failures_reduce_alive_count(self, square):
        net = SensorNetwork.from_random(
            square, 12, comm_range=0.4, rng=np.random.default_rng(3)
        )
        injector = FailureInjector(scheduled={3: [0, 1]})
        config = LaacadConfig(k=1, alpha=1.0, epsilon=2e-3, max_rounds=20)
        result = Simulation(
            network=net, config=config, kind="distributed", failure_injector=injector
        ).run()
        assert len(net.alive_nodes()) == 10
        # Dead nodes report zero sensing range.
        assert result.sensing_ranges[0] == 0.0
        assert result.sensing_ranges[1] == 0.0

    def test_message_loss_still_converges(self, square):
        net = SensorNetwork.from_random(
            square, 10, comm_range=0.4, rng=np.random.default_rng(4)
        )
        config = LaacadConfig(k=1, alpha=1.0, epsilon=5e-3, max_rounds=40)
        result = Simulation(
            network=net, config=config, kind="distributed", drop_probability=0.05
        ).run()
        assert result.communication.dropped > 0
        assert result.max_sensing_range > 0
