"""Tests for the scenario subsystem: spec, registry, pipelines, sweep."""

import json

import pytest

from repro.core.config import LaacadConfig
from repro.network.mobility import MobilityModel
from repro.scenarios import (
    ScenarioSpec,
    SweepRunner,
    available_families,
    available_pipelines,
    expand_grid,
    get_family,
    make_scenario,
    register_pipeline,
    run_scenarios,
)


class TestScenarioSpec:
    def test_dict_roundtrip_preserves_digest(self):
        spec = make_scenario("corner_cluster", k=3, node_count=17, max_rounds=9)
        clone = ScenarioSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert clone == spec
        assert clone.digest() == spec.digest()

    def test_digest_ignores_name_but_not_params(self):
        spec = ScenarioSpec(name="a", k=2)
        assert spec.digest() == spec.replace(name="b").digest()
        assert spec.digest() != spec.replace(k=3).digest()
        assert spec.digest() != spec.replace(seed=99).digest()

    def test_digest_is_engine_agnostic(self):
        # The engines are bit-identical, so a sweep cached under one
        # backend must resolve under the other.
        spec = ScenarioSpec(k=2)
        assert spec.digest() == spec.replace(engine="legacy").digest()

    def test_override_rejects_unknown_parameter(self):
        with pytest.raises(ValueError, match="unknown scenario parameter"):
            ScenarioSpec().override("node_cout", 8)
        with pytest.raises(ValueError, match="unknown scenario parameter"):
            ScenarioSpec().override("placment.kind", "random")

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown scenario fields"):
            ScenarioSpec.from_dict({"k": 2, "bogus": 1})

    def test_dotted_override(self):
        spec = ScenarioSpec(placement={"kind": "corner_cluster", "cluster_fraction": 0.15})
        updated = spec.override("placement.cluster_fraction", 0.3)
        assert updated.placement["cluster_fraction"] == 0.3
        assert updated.placement["kind"] == "corner_cluster"
        assert spec.placement["cluster_fraction"] == 0.15  # original untouched

    def test_dotted_override_requires_mapping_field(self):
        with pytest.raises(ValueError, match="not a mapping"):
            ScenarioSpec().override("k.sub", 1)

    def test_build_config_and_mobility(self):
        spec = ScenarioSpec(k=2, alpha=0.5, max_rounds=7, seed=5, mobility={"max_step": 0.1})
        config = spec.build_config()
        assert config == LaacadConfig(k=2, alpha=0.5, epsilon=1e-3, max_rounds=7, seed=5)
        assert spec.build_mobility() == MobilityModel(max_step=0.1)

    def test_placement_seed_defaults_to_seed(self):
        assert ScenarioSpec(seed=9).resolved_placement_seed() == 9
        assert ScenarioSpec(seed=9, placement_seed=4).resolved_placement_seed() == 4

    def test_same_hash_means_identical_results(self):
        # The determinism contract behind the content-addressed cache:
        # two runs of the same scenario hash are bit-identical.
        spec = make_scenario("corner_cluster", node_count=12, k=2, max_rounds=8)
        twin = ScenarioSpec.from_dict(spec.to_dict())
        assert twin.digest() == spec.digest()
        assert spec.run() == twin.run()

    def test_unknown_pipeline_fails_fast(self):
        with pytest.raises(ValueError, match="unknown pipeline"):
            ScenarioSpec(pipeline="warp_drive").run()

    def test_unknown_region_and_placement(self):
        with pytest.raises(ValueError, match="unknown region kind"):
            ScenarioSpec(region={"kind": "klein_bottle"}).build_region()
        with pytest.raises(ValueError, match="unknown placement kind"):
            ScenarioSpec(placement={"kind": "teleport"}).build_network()


class TestRegistry:
    def test_builtin_families_exist(self):
        names = set(available_families())
        assert {
            "open_field",
            "corner_cluster",
            "obstacle_field",
            "l_hall_obstacles",
            "node_failures",
            "constrained_mobility",
            "ring_probe",
            "voronoi_partition",
            "static_blueprint",
            "dense_uniform",
        } <= names

    def test_unknown_family_error_lists_choices(self):
        with pytest.raises(KeyError, match="open_field"):
            get_family("does_not_exist")

    def test_expand_grid_order_matches_nested_loops(self):
        base = ScenarioSpec()
        specs = expand_grid(base, {"node_count": [10, 20], "k": [1, 2]})
        cells = [(s.node_count, s.k) for s in specs]
        assert cells == [(10, 1), (10, 2), (20, 1), (20, 2)]

    def test_expand_grid_empty_returns_base(self):
        base = ScenarioSpec(k=4)
        assert expand_grid(base, {}) == [base]

    def test_override_pins_default_grid_axis(self):
        # A fixed override must not be swept away by the default grid.
        specs = get_family("open_field").grid(None, node_count=50)
        assert all(s.node_count == 50 for s in specs)
        assert [s.k for s in specs] == [1, 2, 3]

    def test_voronoi_pipeline_rejects_non_random_placement(self):
        spec = make_scenario(
            "voronoi_partition", node_count=10
        ).override("placement", {"kind": "lattice", "lattice": "triangular"})
        with pytest.raises(ValueError, match="voronoi pipeline"):
            spec.run()

    def test_family_default_grids_expand(self):
        for name in available_families():
            specs = get_family(name).grid()
            assert specs, name
            digests = {s.digest() for s in specs}
            assert len(digests) == len(specs), f"{name} grid has duplicate cells"

    def test_every_family_base_builds(self):
        # Each family's base spec must construct a valid network + config
        # (cheap structural check; no simulation).
        for name in available_families():
            spec = get_family(name).base.replace(node_count=10)
            spec.build_region()
            spec.build_config()
            spec.build_mobility()


class TestPipelines:
    def test_builtin_pipelines_registered(self):
        assert {
            "laacad",
            "static",
            "distributed",
            "voronoi",
            "rings",
            "localized_compare",
        } <= set(available_pipelines())

    def test_register_pipeline_roundtrip(self):
        register_pipeline("echo_test", lambda spec: {"k": spec.k})
        try:
            assert ScenarioSpec(pipeline="echo_test", k=7).run() == {"k": 7}
        finally:
            from repro.scenarios import pipelines

            del pipelines._PIPELINES["echo_test"]

    def test_static_pipeline_keeps_positions(self):
        result = make_scenario("static_blueprint", node_count=8, k=1).run()
        assert result["rounds_executed"] == 0
        assert result["initial_positions"] == result["final_positions"]
        assert all(r > 0 for r in result["sensing_ranges"])

    def test_distributed_pipeline_reports_failures(self):
        spec = make_scenario("node_failures", node_count=14, k=2, max_rounds=25)
        result = spec.run()
        # Crashes are scheduled at rounds 10 and 20; both fire within the cap.
        assert result["killed_nodes"] == [0, 1, 2]
        assert result["communication"]["messages"] > 0

    def test_constrained_mobility_limits_steps(self):
        free = make_scenario(
            "constrained_mobility", node_count=10, k=1, max_rounds=6, mobility={}
        ).run()
        limited = make_scenario(
            "constrained_mobility", node_count=10, k=1, max_rounds=6
        ).run()
        assert limited["total_movement"] < free["total_movement"]


class TestSweepRunner:
    def _grid(self, n=10, rounds=6):
        base = make_scenario("corner_cluster", node_count=n, max_rounds=rounds)
        return expand_grid(base, {"k": [1, 2]})

    def test_cache_hits_on_second_run(self, tmp_path):
        specs = self._grid()
        runner = SweepRunner(cache_dir=tmp_path)
        first = runner.run(specs)
        assert (first.hits, first.misses) == (0, 2)
        second = runner.run(specs)
        assert (second.hits, second.misses) == (2, 0)
        assert second.results == first.results

    def test_resume_computes_only_missing_cells(self, tmp_path):
        specs = self._grid()
        runner = SweepRunner(cache_dir=tmp_path)
        runner.run(specs[:1])
        report = runner.run(specs)
        assert (report.hits, report.misses) == (1, 1)

    def test_parallel_results_equal_serial(self, tmp_path):
        specs = self._grid()
        serial = SweepRunner(jobs=1).run(specs)
        parallel = SweepRunner(jobs=2).run(specs)
        assert parallel.results == serial.results
        # ... and a jobs>1 run populates the same cache a serial run reads.
        SweepRunner(cache_dir=tmp_path, jobs=2).run(specs)
        warmed = SweepRunner(cache_dir=tmp_path, jobs=1).run(specs)
        assert warmed.misses == 0
        assert warmed.results == serial.results

    def test_duplicate_specs_computed_once(self):
        spec = self._grid()[0]
        report = SweepRunner().run([spec, spec, spec])
        assert report.misses == 1
        assert len(report.outcomes) == 3
        assert report.results[0] == report.results[1] == report.results[2]

    def test_stale_or_mismatched_cache_entries_recompute(self, tmp_path):
        spec = self._grid()[0]
        runner = SweepRunner(cache_dir=tmp_path)
        runner.run([spec])
        path = runner._cache_path(spec.digest())
        payload = json.loads(path.read_text())
        payload["schema_version"] = -1
        path.write_text(json.dumps(payload))
        assert runner.run([spec]).misses == 1

    def test_corrupt_cache_file_recomputes(self, tmp_path):
        spec = self._grid()[0]
        runner = SweepRunner(cache_dir=tmp_path)
        runner.run([spec])
        runner._cache_path(spec.digest()).write_text("{not json")
        report = runner.run([spec])
        assert report.misses == 1

    def test_jobs_validation(self):
        with pytest.raises(ValueError):
            SweepRunner(jobs=0)

    def test_run_scenarios_convenience(self):
        results = run_scenarios(self._grid())
        assert len(results) == 2
        assert all("rounds_executed" in r for r in results)
