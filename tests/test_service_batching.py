"""Batched event delivery: flush windows, back-pressure, lifecycle.

Covers the boundary conditions the klipper-style coalescing pattern has
to get right: count-triggered vs wall-clock-triggered flushes, empty
flush windows producing no batch, a subscriber slower than the
producer (bounded queue, counted drops), and unsubscribe mid-batch.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.api import Simulation
from repro.service import EventBatcher, SessionManager

SCENARIO = dict(node_count=8, k=1, seed=3, max_rounds=30, epsilon=2e-3)


def run(coro):
    return asyncio.run(coro)


def make_events(count):
    """Real RoundEvents from a real session (the wire form needs stats)."""
    sim = Simulation(**SCENARIO)
    return [sim.step() for _ in range(count)]


class TestFlushWindows:
    def test_count_triggered_flush(self):
        async def main():
            batcher = EventBatcher("s", max_events=3, max_latency=60.0)
            sub = batcher.attach()
            for event in make_events(7):
                batcher.publish(event)
            # 7 events, window of 3: two full batches flushed, one open.
            first = await sub.next_batch(timeout=0.1)
            second = await sub.next_batch(timeout=0.1)
            assert first["event_count"] == 3 and second["event_count"] == 3
            assert first["batch_index"] == 0 and second["batch_index"] == 1
            assert [e["round_index"] for e in first["events"]] == [0, 1, 2]
            assert await sub.next_batch(timeout=0.05) is None, (
                "the seventh event must still be coalescing"
            )
            assert len(sub.buffer) == 1

        run(main())

    def test_wallclock_triggered_flush(self):
        async def main():
            batcher = EventBatcher("s", max_events=100, max_latency=0.05)
            sub = batcher.attach()
            batcher.publish(make_events(1)[0])
            assert not sub.pending, "no flush before the window elapses"
            batch = await sub.next_batch(timeout=2.0)
            assert batch is not None and batch["event_count"] == 1

        run(main())

    def test_zero_latency_degenerates_to_per_event(self):
        async def main():
            batcher = EventBatcher("s", max_events=100, max_latency=0.0)
            sub = batcher.attach()
            for event in make_events(3):
                batcher.publish(event)
            sizes = []
            while True:
                batch = await sub.next_batch(timeout=0.05)
                if batch is None:
                    break
                sizes.append(batch["event_count"])
            assert sizes == [1, 1, 1]

        run(main())

    def test_empty_flush_window_produces_no_batch(self):
        async def main():
            batcher = EventBatcher("s", max_events=4, max_latency=60.0)
            sub = batcher.attach()
            batcher.flush_all()  # nothing buffered
            assert await sub.next_batch(timeout=0.05) is None
            assert sub.batches_flushed == 0

        run(main())

    def test_flush_all_closes_partial_batch(self):
        async def main():
            batcher = EventBatcher("s", max_events=100, max_latency=60.0)
            sub = batcher.attach()
            for event in make_events(2):
                batcher.publish(event)
            batcher.flush_all()
            batch = await sub.next_batch(timeout=0.1)
            assert batch["event_count"] == 2

        run(main())

    def test_final_flag_set_on_done_event(self):
        async def main():
            sim = Simulation(node_count=6, k=1, seed=1, max_rounds=2)
            batcher = EventBatcher("s", max_events=100, max_latency=60.0)
            sub = batcher.attach()
            while not sim.done:
                batcher.publish(sim.step())
            batcher.flush_all()
            batch = await sub.next_batch(timeout=0.1)
            assert batch["final"] is True

        run(main())

    def test_per_subscriber_window_overrides(self):
        async def main():
            batcher = EventBatcher("s", max_events=10, max_latency=60.0)
            small = batcher.attach(max_events=2)
            large = batcher.attach()
            for event in make_events(4):
                batcher.publish(event)
            batch = await small.next_batch(timeout=0.1)
            assert batch["event_count"] == 2
            assert await large.next_batch(timeout=0.05) is None

        run(main())

    def test_invalid_windows_rejected(self):
        batcher = EventBatcher("s")
        with pytest.raises(ValueError):
            batcher.attach(max_events=0)
        with pytest.raises(ValueError):
            batcher.attach(max_latency=-1.0)


class TestBackpressure:
    def test_slow_subscriber_drops_oldest_and_counts(self):
        async def main():
            batcher = EventBatcher("s", max_events=1, max_latency=60.0, max_pending=3)
            sub = batcher.attach()
            for event in make_events(8):
                batcher.publish(event)  # 8 one-event batches, queue holds 3
            batches = []
            while True:
                batch = await sub.next_batch(timeout=0.05)
                if batch is None:
                    break
                batches.append(batch)
            assert len(batches) == 3
            # The *newest* batches survive; the drop count is reported.
            assert [b["events"][0]["round_index"] for b in batches] == [5, 6, 7]
            assert batches[-1]["dropped_batches"] == 5
            assert sub.dropped_batches == 5

        run(main())

    def test_producer_never_blocks_on_full_queue(self):
        async def main():
            batcher = EventBatcher("s", max_events=1, max_latency=60.0, max_pending=2)
            sub = batcher.attach()
            events = make_events(20)
            loop = asyncio.get_running_loop()
            start = loop.time()
            for event in events:
                batcher.publish(event)
            assert loop.time() - start < 1.0
            assert len(sub.pending) == 2

        run(main())


class TestSubscriberLifecycle:
    def test_unsubscribe_mid_batch(self):
        async def main():
            batcher = EventBatcher("s", max_events=5, max_latency=60.0)
            sub = batcher.attach()
            for event in make_events(3):
                batcher.publish(event)  # open batch of 3, not yet flushed
            batcher.detach(sub.id)
            assert sub.closed
            assert await sub.next_batch(timeout=0.05) is None
            # The dangling flush timer must have been cancelled: nothing
            # fires later and no batch materialises.
            await asyncio.sleep(0.05)
            assert sub.batches_flushed == 0
            # Publishing after detach reaches no one.
            batcher.publish(make_events(1)[0])
            assert batcher.subscriber_count == 0

        run(main())

    def test_unsubscribe_wakes_pending_longpoll(self):
        async def main():
            batcher = EventBatcher("s", max_events=5, max_latency=60.0)
            sub = batcher.attach()

            async def poll():
                return await sub.next_batch(timeout=5.0)

            task = asyncio.create_task(poll())
            await asyncio.sleep(0.02)
            batcher.detach(sub.id)
            result = await asyncio.wait_for(task, timeout=1.0)
            assert result is None

        run(main())

    def test_detach_unknown_raises(self):
        batcher = EventBatcher("s")
        with pytest.raises(KeyError):
            batcher.detach("sub-99")

    def test_independent_subscriber_cursors(self):
        async def main():
            batcher = EventBatcher("s", max_events=2, max_latency=60.0)
            a = batcher.attach()
            b = batcher.attach()
            for event in make_events(4):
                batcher.publish(event)
            a1 = await a.next_batch(timeout=0.1)
            b1 = await b.next_batch(timeout=0.1)
            b2 = await b.next_batch(timeout=0.1)
            assert a1["batch_index"] == 0
            assert (b1["batch_index"], b2["batch_index"]) == (0, 1)
            # a's second batch is still waiting, independent of b.
            a2 = await a.next_batch(timeout=0.1)
            assert a2["batch_index"] == 1

        run(main())


class TestManagerIntegration:
    def test_subscriber_sees_every_round_in_order(self):
        async def main():
            manager = SessionManager(batch_max_events=4, batch_max_latency=60.0)
            await manager.create("alpha", **SCENARIO)
            sub = await manager.subscribe("alpha")
            await manager.run_to_round("alpha", 10)
            seen = []
            while True:
                batch = await manager.next_batch("alpha", sub, timeout=0.05)
                if batch is None:
                    break
                seen.extend(e["round_index"] for e in batch["events"])
            # 10 rounds, window 4 → batches of 4+4, last 2 still open...
            # unless the session finished early, which force-flushes.
            info = manager.info("alpha")
            expected = 10 if not info["done"] else info["rounds_executed"]
            assert seen == list(range(8 if expected == 10 else expected))
            await manager.close()

        run(main())

    def test_done_session_force_flushes_partial_batch(self):
        async def main():
            manager = SessionManager(batch_max_events=100, batch_max_latency=60.0)
            await manager.create("alpha", node_count=6, k=1, seed=1, max_rounds=3)
            sub = await manager.subscribe("alpha")
            await manager.run_to_round("alpha", 99)
            batch = await manager.next_batch("alpha", sub, timeout=0.5)
            assert batch is not None and batch["final"]
            assert batch["event_count"] == 3
            await manager.close()

        run(main())

    def test_positions_opt_in(self):
        async def main():
            manager = SessionManager(batch_max_events=1)
            await manager.create("alpha", **SCENARIO)
            lean = await manager.subscribe("alpha")
            rich = await manager.subscribe("alpha", include_positions=True)
            await manager.step("alpha")
            lean_batch = await manager.next_batch("alpha", lean, timeout=0.5)
            rich_batch = await manager.next_batch("alpha", rich, timeout=0.5)
            assert "positions" not in lean_batch["events"][0]
            assert len(rich_batch["events"][0]["positions"]) == SCENARIO["node_count"]
            assert rich_batch["events"][0]["centers"]
            await manager.close()

        run(main())

    def test_subscription_survives_eviction(self):
        async def main():
            manager = SessionManager(batch_max_events=2, batch_max_latency=60.0)
            await manager.create("alpha", **SCENARIO)
            sub = await manager.subscribe("alpha")
            await manager.step("alpha")
            await manager.evict("alpha")
            await manager.step("alpha")  # resurrects; batch completes
            batch = await manager.next_batch("alpha", sub, timeout=0.5)
            assert [e["round_index"] for e in batch["events"]] == [0, 1]
            await manager.close()

        run(main())

    def test_unsubscribe_through_manager(self):
        async def main():
            manager = SessionManager()
            await manager.create("alpha", **SCENARIO)
            sub = await manager.subscribe("alpha")
            await manager.unsubscribe("alpha", sub)
            from repro.service import UnknownSessionError

            with pytest.raises(UnknownSessionError):
                await manager.next_batch("alpha", sub, timeout=0.05)
            await manager.close()

        run(main())
