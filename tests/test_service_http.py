"""HTTP front-end tests: endpoints, long-poll delivery, error mapping.

The server is driven exactly as a remote client would drive it — stdlib
``urllib`` over a real TCP socket against a :class:`ServiceThread` —
including the CI smoke scenario in miniature: concurrent sessions under
a forced-eviction budget whose results must match direct in-process
runs.
"""

from __future__ import annotations

import concurrent.futures
import json
import urllib.error
import urllib.request

import pytest

from repro.api import Simulation
from repro.service import ServiceThread, estimate_live_nbytes
from repro.service.cli import build_parser

SCENARIO = dict(node_count=8, k=1, seed=3, max_rounds=10, epsilon=2e-3)


def request(method, url, body=None, timeout=30):
    data = json.dumps(body).encode("utf-8") if body is not None else None
    req = urllib.request.Request(
        url, data=data, method=method, headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


@pytest.fixture(scope="module")
def service():
    with ServiceThread(max_live_sessions=64, batch_max_latency=0.1) as svc:
        yield svc.base_url


class TestEndpoints:
    def test_create_info_list_delete(self, service):
        status, body = request(
            "POST", service + "/sessions", {"name": "crud", "scenario": SCENARIO}
        )
        assert status == 201 and body["name"] == "crud" and body["live"]
        status, body = request("GET", service + "/sessions/crud")
        assert status == 200 and body["rounds_executed"] == 0
        status, body = request("GET", service + "/sessions")
        assert any(s["name"] == "crud" for s in body["sessions"])
        status, body = request("DELETE", service + "/sessions/crud")
        assert status == 200
        status, _ = request("GET", service + "/sessions/crud")
        assert status == 404

    def test_step_run_result_checkpoint(self, service):
        request("POST", service + "/sessions", {"name": "drive", "scenario": SCENARIO})
        status, body = request(
            "POST", service + "/sessions/drive/step", {"rounds": 2}
        )
        assert status == 200
        assert body["session"]["rounds_executed"] == 2
        assert [e["round_index"] for e in body["events"]] == [0, 1]
        assert body["events"][0]["stats"]["max_displacement"] > 0.0
        status, body = request(
            "POST", service + "/sessions/drive/run", {"until_round": 5}
        )
        assert status == 200 and body["session"]["rounds_executed"] == 5
        status, body = request("GET", service + "/sessions/drive/result")
        assert status == 200 and body["rounds_executed"] == 5
        status, body = request("GET", service + "/sessions/drive/checkpoint")
        assert status == 200
        assert body["checkpoint_version"] == 1 and body["rounds_executed"] == 5
        # The served checkpoint is a complete restore source.
        resumed = Simulation.restore(body)
        assert resumed.state.rounds_executed == 5
        request("DELETE", service + "/sessions/drive")

    def test_evict_endpoint_and_transparent_resume(self, service):
        request("POST", service + "/sessions", {"name": "evictee", "scenario": SCENARIO})
        request("POST", service + "/sessions/evictee/step", {"rounds": 1})
        status, body = request("POST", service + "/sessions/evictee/evict")
        assert status == 200 and not body["live"]
        status, body = request("POST", service + "/sessions/evictee/step", {"rounds": 1})
        assert status == 200 and body["session"]["rounds_executed"] == 2
        assert body["session"]["resurrections"] == 1
        request("DELETE", service + "/sessions/evictee")

    def test_stats(self, service):
        status, body = request("GET", service + "/stats")
        assert status == 200
        assert body["max_live_sessions"] == 64
        assert body["total_created"] >= 1

    def test_error_mapping(self, service):
        status, _ = request("GET", service + "/sessions/ghost")
        assert status == 404
        status, _ = request("POST", service + "/sessions/ghost/step", {})
        assert status == 404
        status, _ = request("GET", service + "/no/such/route")
        assert status == 404
        status, body = request(
            "POST", service + "/sessions", {"name": "dup", "scenario": SCENARIO}
        )
        assert status == 201
        status, body = request(
            "POST", service + "/sessions", {"name": "dup", "scenario": SCENARIO}
        )
        assert status == 409 and "already exists" in body["error"]
        status, body = request(
            "POST", service + "/sessions", {"scenario": {"node_count": "many"}}
        )
        assert status == 400
        status, _ = request("DELETE", service + "/stats")
        assert status == 405
        request("DELETE", service + "/sessions/dup")

    def test_completed_session_conflict(self, service):
        request(
            "POST",
            service + "/sessions",
            {"name": "tiny", "scenario": dict(SCENARIO, max_rounds=1)},
        )
        request("POST", service + "/sessions/tiny/run", {"until_round": 99})
        status, body = request("POST", service + "/sessions/tiny/step", {})
        assert status == 409 and "complete" in body["error"]
        request("DELETE", service + "/sessions/tiny")


class TestSubscriptions:
    def test_longpoll_batch_delivery(self, service):
        request("POST", service + "/sessions", {"name": "watched", "scenario": SCENARIO})
        status, body = request(
            "POST",
            service + "/sessions/watched/subscribers",
            {"max_events": 3, "max_latency": 30.0},
        )
        assert status == 201
        sub = body["subscriber_id"]
        request("POST", service + "/sessions/watched/step", {"rounds": 3})
        status, body = request(
            "GET", service + f"/sessions/watched/subscribers/{sub}/batch?timeout=5"
        )
        assert status == 200
        batch = body["batch"]
        assert batch["event_count"] == 3 and batch["batch_index"] == 0
        # Nothing further buffered: the long-poll times out to null.
        status, body = request(
            "GET", service + f"/sessions/watched/subscribers/{sub}/batch?timeout=0.1"
        )
        assert status == 200 and body["batch"] is None
        status, _ = request(
            "DELETE", service + f"/sessions/watched/subscribers/{sub}"
        )
        assert status == 200
        status, _ = request(
            "GET", service + f"/sessions/watched/subscribers/{sub}/batch?timeout=0.1"
        )
        assert status == 404
        request("DELETE", service + "/sessions/watched")

    def test_longpoll_wakes_on_concurrent_step(self, service):
        request("POST", service + "/sessions", {"name": "pushed", "scenario": SCENARIO})
        _, body = request(
            "POST",
            service + "/sessions/pushed/subscribers",
            {"max_events": 1},
        )
        sub = body["subscriber_id"]
        with concurrent.futures.ThreadPoolExecutor(1) as pool:
            poll = pool.submit(
                request,
                "GET",
                service + f"/sessions/pushed/subscribers/{sub}/batch?timeout=10",
            )
            request("POST", service + "/sessions/pushed/step", {})
            status, body = poll.result(timeout=15)
        assert status == 200 and body["batch"]["event_count"] == 1
        request("DELETE", service + "/sessions/pushed")


class TestSmokeScenario:
    def test_concurrent_sessions_forced_eviction_match_direct_runs(self):
        """The CI smoke in miniature: concurrent HTTP clients, a byte
        budget too small for even one live session, results equal to
        direct in-process runs."""
        budget = estimate_live_nbytes(SCENARIO["node_count"]) - 1
        with ServiceThread(max_live_bytes=budget, max_workers=4) as svc:
            base = svc.base_url

            def drive(i):
                name = f"smoke-{i}"
                scenario = dict(SCENARIO, seed=200 + i, max_rounds=4)
                status, _ = request(
                    "POST", base + "/sessions", {"name": name, "scenario": scenario}
                )
                assert status == 201
                while True:
                    status, body = request("GET", base + f"/sessions/{name}")
                    if body["done"] or body["rounds_executed"] >= 4:
                        break
                    status, body = request(
                        "POST", base + f"/sessions/{name}/step", {}
                    )
                    assert status == 200
                status, result = request("GET", base + f"/sessions/{name}/result")
                assert status == 200
                return i, result

            with concurrent.futures.ThreadPoolExecutor(8) as pool:
                results = dict(pool.map(drive, range(10)))

            _, stats = request("GET", base + "/stats")
            assert stats["total_evictions"] >= 10, "the tiny budget must force evictions"
            assert stats["live_sessions"] <= 1

        for i, served in results.items():
            direct = Simulation(**dict(SCENARIO, seed=200 + i, max_rounds=4)).run()
            assert served == direct.to_dict(), f"session smoke-{i} diverged over HTTP"


class TestCli:
    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.host == "127.0.0.1" and args.port == 8723
        assert args.max_live_sessions is None

    def test_serve_parser_all_flags(self):
        args = build_parser().parse_args(
            [
                "serve",
                "--port", "0",
                "--max-live-sessions", "16",
                "--live-bytes-budget", "1000000",
                "--workers", "2",
                "--flush-count", "8",
                "--flush-window", "0.5",
            ]
        )
        assert args.port == 0
        assert args.max_live_sessions == 16
        assert args.live_bytes_budget == 1_000_000
        assert args.workers == 2
        assert args.flush_count == 8 and args.flush_window == 0.5
