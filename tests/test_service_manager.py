"""Service-layer tests: SessionManager lifecycle, eviction, races.

The heart of the contract: a session that is checkpoint-evicted and
transparently resurrected continues **bitwise identically** to one that
was never evicted — eviction is invisible to the caller in everything
but resident memory.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.api import Simulation
from repro.service import (
    DuplicateSessionError,
    SessionCompletedError,
    SessionManager,
    UnknownSessionError,
    estimate_live_nbytes,
)

SCENARIO = dict(node_count=10, k=1, seed=3, max_rounds=25, epsilon=2e-3)
#: A second scenario with distributed communication + RNG state, the
#: hardest thing eviction must round-trip.
DISTRIBUTED_SCENARIO = dict(
    node_count=10,
    k=1,
    seed=5,
    max_rounds=20,
    epsilon=2e-3,
    pipeline="distributed",
    drop_probability=0.1,
)


def run(coro):
    return asyncio.run(coro)


class TestLifecycle:
    def test_create_info_delete(self):
        async def main():
            manager = SessionManager()
            info = await manager.create("alpha", **SCENARIO)
            assert info["name"] == "alpha"
            assert info["live"] and not info["done"]
            assert info["rounds_executed"] == 0
            assert info["node_count"] == SCENARIO["node_count"]
            assert manager.info("alpha")["name"] == "alpha"
            assert [s["name"] for s in manager.list_sessions()] == ["alpha"]
            await manager.delete("alpha")
            with pytest.raises(UnknownSessionError):
                manager.info("alpha")
            await manager.close()

        run(main())

    def test_auto_names_are_unique(self):
        async def main():
            manager = SessionManager()
            names = {(await manager.create(**SCENARIO))["name"] for _ in range(5)}
            assert len(names) == 5
            await manager.close()

        run(main())

    def test_duplicate_name_rejected(self):
        async def main():
            manager = SessionManager()
            await manager.create("alpha", **SCENARIO)
            with pytest.raises(DuplicateSessionError):
                await manager.create("alpha", **SCENARIO)
            await manager.close()

        run(main())

    def test_step_and_run_to_round(self):
        async def main():
            manager = SessionManager()
            await manager.create("alpha", **SCENARIO)
            out = await manager.step("alpha", rounds=3)
            assert out["session"]["rounds_executed"] == 3
            assert [e["round_index"] for e in out["events"]] == [0, 1, 2]
            out = await manager.run_to_round("alpha", 7)
            assert out["session"]["rounds_executed"] == 7
            # run_to_round at-or-past the target is a no-op
            out = await manager.run_to_round("alpha", 5)
            assert out["session"]["rounds_executed"] == 7
            await manager.close()

        run(main())

    def test_stepping_completed_session_conflicts(self):
        async def main():
            manager = SessionManager()
            await manager.create("alpha", node_count=6, k=1, seed=1, max_rounds=2)
            await manager.run_to_round("alpha", 99)
            assert manager.info("alpha")["done"]
            with pytest.raises(SessionCompletedError):
                await manager.step("alpha")
            # ... but the result stays servable.
            result = await manager.result("alpha")
            assert result["rounds_executed"] == 2
            await manager.close()

        run(main())

    def test_unknown_session_everywhere(self):
        async def main():
            manager = SessionManager()
            with pytest.raises(UnknownSessionError):
                await manager.step("ghost")
            with pytest.raises(UnknownSessionError):
                await manager.checkpoint("ghost")
            with pytest.raises(UnknownSessionError):
                await manager.delete("ghost")
            with pytest.raises(UnknownSessionError):
                await manager.subscribe("ghost")
            await manager.close()

        run(main())

    def test_adopt_existing_simulation(self):
        async def main():
            sim = Simulation(**SCENARIO)
            sim.step()
            manager = SessionManager()
            info = await manager.adopt("pre-built", sim)
            assert info["rounds_executed"] == 1
            out = await manager.step("pre-built")
            assert out["session"]["rounds_executed"] == 2
            await manager.close()

        run(main())


class TestEviction:
    def test_lru_eviction_over_session_cap(self):
        async def main():
            manager = SessionManager(max_live_sessions=2)
            for i in range(5):
                await manager.create(f"s{i}", **SCENARIO)
            stats = manager.stats()
            assert stats["live_sessions"] == 2
            assert stats["evicted_sessions"] == 3
            # LRU: the oldest creations went first.
            live = {s["name"] for s in manager.list_sessions() if s["live"]}
            assert live == {"s3", "s4"}
            await manager.close()

        run(main())

    def test_byte_budget_eviction(self):
        async def main():
            # Budget below one session's estimate: every session is
            # evicted as soon as it is not the one being touched.
            budget = estimate_live_nbytes(SCENARIO["node_count"]) - 1
            manager = SessionManager(max_live_bytes=budget)
            await manager.create("a", **SCENARIO)
            await manager.create("b", **SCENARIO)
            stats = manager.stats()
            assert stats["live_sessions"] == 0
            assert stats["evicted_sessions"] == 2
            # Stepping still works — resurrect, step, evict again.
            out = await manager.step("a")
            assert out["session"]["rounds_executed"] == 1
            assert manager.stats()["evicted_sessions"] == 2
            await manager.close()

        run(main())

    def test_resurrection_on_step_is_transparent(self):
        async def main():
            manager = SessionManager()
            await manager.create("alpha", **SCENARIO)
            await manager.step("alpha", rounds=2)
            await manager.evict("alpha")
            assert not manager.info("alpha")["live"]
            out = await manager.step("alpha")
            assert out["session"]["rounds_executed"] == 3
            assert out["session"]["live"]
            assert out["session"]["resurrections"] == 1
            await manager.close()

        run(main())

    def test_evicted_checkpoint_served_from_blob_without_resurrection(self):
        async def main():
            manager = SessionManager()
            await manager.create("alpha", **SCENARIO)
            await manager.step("alpha", rounds=2)
            await manager.evict("alpha")
            payload = await manager.checkpoint("alpha")
            assert payload["rounds_executed"] == 2
            assert not manager.info("alpha")["live"], (
                "serving a checkpoint must not resurrect"
            )
            assert manager.stats()["total_resurrections"] == 0
            await manager.close()

        run(main())

    def test_evicted_nbytes_is_blob_size(self):
        async def main():
            manager = SessionManager()
            await manager.create("alpha", **SCENARIO)
            live_nbytes = manager.info("alpha")["nbytes"]
            assert live_nbytes == estimate_live_nbytes(SCENARIO["node_count"])
            await manager.evict("alpha")
            payload = await manager.checkpoint("alpha")
            blob_nbytes = len(json.dumps(payload).encode("utf-8"))
            assert manager.info("alpha")["nbytes"] == blob_nbytes
            assert blob_nbytes < live_nbytes
            await manager.close()

        run(main())

    @pytest.mark.parametrize(
        "scenario", [SCENARIO, DISTRIBUTED_SCENARIO], ids=["laacad", "distributed"]
    )
    def test_evicted_session_continues_bitwise_identically(self, scenario):
        """The acceptance contract: evict/resurrect every round, final
        result equals an uninterrupted in-process run exactly."""

        async def service_run():
            manager = SessionManager()
            await manager.create("alpha", **scenario)
            while not manager.info("alpha")["done"]:
                await manager.step("alpha")
                await manager.evict("alpha")
            result = await manager.result("alpha")
            evictions = manager.info("alpha")["evictions"]
            await manager.close()
            return result, evictions

        serviced, evictions = run(service_run())
        direct = Simulation(**scenario).run().to_dict()
        assert evictions >= serviced["rounds_executed"] >= 1
        assert serviced == direct, (
            "evicted-and-resurrected session diverged from the direct run"
        )

    def test_completed_session_survives_eviction(self):
        async def main():
            manager = SessionManager()
            await manager.create("alpha", node_count=6, k=1, seed=1, max_rounds=3)
            await manager.run_to_round("alpha", 99)
            result_before = await manager.result("alpha")
            await manager.evict("alpha")
            result_after = await manager.result("alpha")
            assert result_before == result_after
            await manager.close()

        run(main())


class TestConcurrency:
    def test_concurrent_creates_same_name_one_winner(self):
        async def main():
            manager = SessionManager()
            results = await asyncio.gather(
                *(manager.create("alpha", **SCENARIO) for _ in range(4)),
                return_exceptions=True,
            )
            winners = [r for r in results if isinstance(r, dict)]
            losers = [r for r in results if isinstance(r, DuplicateSessionError)]
            assert len(winners) == 1 and len(losers) == 3
            await manager.close()

        run(main())

    def test_concurrent_step_evict_resurrect_race(self):
        """Many tasks hammer overlapping sessions under a 2-live cap;
        every session must end at exactly the requested round count."""

        async def main():
            manager = SessionManager(max_live_sessions=2, max_workers=4)
            names = [f"s{i}" for i in range(8)]
            for name in names:
                await manager.create(name, **SCENARIO)

            async def drive(name):
                for _ in range(3):
                    await manager.step(name)

            await asyncio.gather(*(drive(name) for name in names))
            for name in names:
                assert manager.info(name)["rounds_executed"] == 3
            stats = manager.stats()
            assert stats["live_sessions"] <= 2
            assert stats["total_evictions"] > 0, "the cap must have forced evictions"
            assert stats["total_steps"] == 3 * len(names)
            await manager.close()

        run(main())

    def test_concurrent_steps_on_one_session_serialize(self):
        async def main():
            manager = SessionManager(max_workers=4)
            await manager.create("alpha", **SCENARIO)
            await asyncio.gather(*(manager.step("alpha") for _ in range(5)))
            assert manager.info("alpha")["rounds_executed"] == 5
            await manager.close()

        run(main())

    def test_concurrent_race_matches_direct_runs(self):
        """Interleaved stepping with eviction pressure still reproduces
        each scenario's direct single-caller result bit for bit."""

        async def main():
            manager = SessionManager(max_live_sessions=1)
            scenarios = {
                f"s{i}": dict(SCENARIO, seed=100 + i, max_rounds=6) for i in range(4)
            }
            for name, scenario in scenarios.items():
                await manager.create(name, **scenario)

            async def drive(name):
                while not manager.info(name)["done"]:
                    await manager.step(name)
                return await manager.result(name)

            results = dict(
                zip(scenarios, await asyncio.gather(*(drive(n) for n in scenarios)))
            )
            await manager.close()
            return results

        results = run(main())
        for name, result in results.items():
            seed = 100 + int(name[1:])
            direct = Simulation(**dict(SCENARIO, seed=seed, max_rounds=6)).run()
            assert result == direct.to_dict(), f"{name} diverged under contention"

    def test_closed_manager_rejects_creates(self):
        async def main():
            manager = SessionManager()
            await manager.close()
            with pytest.raises(RuntimeError):
                await manager.create("alpha", **SCENARIO)

        run(main())
