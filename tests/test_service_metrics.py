"""The service's metrics surface: ``GET /metrics`` and counter-backed stats.

Runs over a real TCP socket against a :class:`ServiceThread`, like the
HTTP API tests — the exposition text is validated with the same checker
the CI smoke job uses, so a Prometheus-compatible scraper is the
contract, not an implementation detail.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.obs.metrics import CONTENT_TYPE, validate_exposition
from repro.service import ServiceThread

SCENARIO = dict(node_count=8, k=1, seed=3, max_rounds=10, epsilon=2e-3)


def request(method, url, body=None, timeout=30):
    data = json.dumps(body).encode("utf-8") if body is not None else None
    req = urllib.request.Request(
        url, data=data, method=method, headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(req, timeout=timeout) as resp:
        return resp.status, json.loads(resp.read())


def scrape(base_url, timeout=30):
    with urllib.request.urlopen(base_url + "/metrics", timeout=timeout) as resp:
        return resp.status, resp.headers.get("Content-Type"), resp.read().decode(
            "utf-8"
        )


def sample_value(text, name):
    for line in text.splitlines():
        if line.startswith(name + " "):
            return float(line.split()[-1])
    raise AssertionError(f"series {name!r} not in exposition")


@pytest.fixture()
def service():
    with ServiceThread(max_live_sessions=4, batch_max_latency=0.05) as svc:
        yield svc


class TestMetricsEndpoint:
    def test_exposition_is_valid_and_carries_service_series(self, service):
        base = service.base_url
        request("POST", base + "/sessions", {"name": "m1", "scenario": SCENARIO})
        request("POST", base + "/sessions/m1/step", {"rounds": 2})
        request("POST", base + "/sessions/m1/evict")
        request("POST", base + "/sessions/m1/step", {"rounds": 1})  # resurrects

        status, content_type, text = scrape(base)
        assert status == 200
        assert content_type == CONTENT_TYPE
        families = validate_exposition(text)

        for family, kind in {
            "repro_service_sessions_created_total": "counter",
            "repro_service_session_steps_total": "counter",
            "repro_service_session_evictions_total": "counter",
            "repro_service_session_resurrections_total": "counter",
            "repro_service_batcher_dropped_batches_total": "counter",
            "repro_service_live_sessions": "gauge",
            "repro_service_evicted_sessions": "gauge",
            "repro_service_live_bytes_estimate": "gauge",
            "repro_http_requests_total": "counter",
            "repro_http_request_seconds": "histogram",
        }.items():
            assert families.get(family) == kind, family

        assert sample_value(text, "repro_service_sessions_created_total") == 1
        assert sample_value(text, "repro_service_session_steps_total") == 3
        assert sample_value(text, "repro_service_session_evictions_total") == 1
        assert sample_value(text, "repro_service_session_resurrections_total") == 1
        assert sample_value(text, "repro_service_live_sessions") == 1

    def test_http_series_label_by_status(self, service):
        base = service.base_url
        try:
            urllib.request.urlopen(base + "/sessions/ghost")
        except urllib.error.HTTPError as exc:
            assert exc.code == 404
        _, _, text = scrape(base)
        assert 'repro_http_requests_total{status="404"}' in text
        # The scrape itself and the 404 both pass through the latency
        # histogram; its count covers every request seen so far.
        _, _, text = scrape(base)
        assert sample_value(text, "repro_http_request_seconds_count") >= 2

    def test_metrics_rejects_non_get(self, service):
        req = urllib.request.Request(
            service.base_url + "/metrics", data=b"{}", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(req)
        assert err.value.code == 405

    def test_engine_series_from_shared_registry_present(self, service):
        # Stepping a session runs the engine, which feeds the
        # process-wide registry; /metrics renders both scopes.
        base = service.base_url
        request("POST", base + "/sessions", {"name": "m2", "scenario": SCENARIO})
        request("POST", base + "/sessions/m2/step", {"rounds": 1})
        _, _, text = scrape(base)
        families = validate_exposition(text)
        assert families.get("repro_piece_pool_freezes_total") == "counter"


class TestStatsFromRegistry:
    def test_stats_totals_are_counter_backed(self, service):
        base = service.base_url
        request("POST", base + "/sessions", {"name": "s1", "scenario": SCENARIO})
        request("POST", base + "/sessions/s1/step", {"rounds": 2})
        request("POST", base + "/sessions/s1/evict")

        status, stats = request("GET", base + "/stats")
        assert status == 200
        assert stats["total_created"] == 1
        assert stats["total_steps"] == 2
        assert stats["total_evictions"] == 1
        assert stats["batcher_dropped_batches"] == 0

        # Single source of truth: /stats and /metrics must agree.
        _, _, text = scrape(base)
        assert sample_value(
            text, "repro_service_sessions_created_total"
        ) == stats["total_created"]
        assert sample_value(
            text, "repro_service_session_evictions_total"
        ) == stats["total_evictions"]
        assert sample_value(
            text, "repro_service_batcher_dropped_batches_total"
        ) == stats["batcher_dropped_batches"]

    def test_batcher_drop_counter_increments_on_overflow(self):
        import asyncio

        from repro.api import Simulation
        from repro.obs.metrics import MetricsRegistry
        from repro.service.batching import EventBatcher

        registry = MetricsRegistry()
        drops = registry.counter(
            "repro_service_batcher_dropped_batches_total", "drops"
        )

        async def main():
            batcher = EventBatcher(
                "s",
                max_events=1,
                max_latency=60.0,
                max_pending=1,
                drop_counter=drops,
            )
            sub = batcher.attach()
            sim = Simulation(**SCENARIO)
            for _ in range(3):  # three one-event batches into a cap of 1
                batcher.publish(sim.step())
            assert sub.dropped_batches == 2  # per-subscriber wire field
            assert drops.value == 2  # same drops, registry view

        asyncio.run(main())
