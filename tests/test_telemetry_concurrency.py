"""Telemetry under concurrency: spans must follow the work, not break it.

Two invariants, per the observability contract:

* every execution seam that fans work out (kernel chunk tasks, the
  multiprocessing sweep pool) yields *complete, correctly parented*
  spans for the fanned-out units; and
* turning tracing on changes no computed output, bit for bit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import LaacadConfig
from repro.engine import make_engine
from repro.network.network import SensorNetwork
from repro.obs import trace
from repro.regions.shapes import unit_square
from repro.scenarios import SweepRunner, expand_grid, make_scenario


@pytest.fixture(autouse=True)
def _tracing_off():
    trace.stop_tracing()
    yield
    trace.stop_tracing()


def _network(n=300, seed=11):
    region = unit_square()
    return SensorNetwork(
        region,
        region.random_points(n, rng=np.random.default_rng(seed)),
        comm_range=0.25,
    )


def _sparse_round(network):
    engine = make_engine("sparse", network, LaacadConfig(k=2, engine="sparse"))
    return engine.compute_round()


def _round_arrays(result):
    return (
        result.circumradii,
        result.ranges_from_position,
        result.displacements,
    )


class TestChunkSpans:
    @pytest.mark.parametrize("threads", [1, 2, 7])
    def test_chunk_spans_complete_and_parented(self, threads, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_THREADS", str(threads))
        network = _network()
        with trace.tracing() as collector:
            _sparse_round(network)
        rows = collector.rows()
        ids = {row["id"] for row in rows}
        chunks = [row for row in rows if row["name"] == "chunk"]
        assert chunks, "a traced sparse round must emit chunk spans"
        for row in chunks:
            assert row["dur"] >= 0.0  # closed, hence complete
            assert row["parent"] in ids  # parented to a recorded stage span
            assert "seq" in row["args"]
        # Chunk geometry is a pure function of (n, worker count), so the
        # span count is deterministic for a fixed configuration.
        with trace.tracing() as again:
            _sparse_round(_network())
        repeat = [r for r in again.rows() if r["name"] == "chunk"]
        assert len(repeat) == len(chunks)

    def test_stage_spans_present(self):
        with trace.tracing() as collector:
            _sparse_round(_network())
        names = {row["name"] for row in collector.rows()}
        assert "clip" in names and "query" in names

    @pytest.mark.parametrize("threads", [1, 2, 7])
    def test_round_outputs_identical_with_tracing_on(self, threads, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_THREADS", str(threads))
        baseline = _round_arrays(_sparse_round(_network()))
        with trace.tracing():
            traced = _round_arrays(_sparse_round(_network()))
        for base, got in zip(baseline, traced):
            assert np.array_equal(base, got)  # bitwise, not approx


class TestSweepTracing:
    def _specs(self):
        base = make_scenario("corner_cluster", node_count=10, max_rounds=6)
        return expand_grid(base, {"k": [1, 2]})

    def test_traced_pooled_sweep_matches_serial_and_stitches_spans(self):
        specs = self._specs()
        serial = SweepRunner(jobs=1).run(specs)
        with trace.tracing() as collector:
            parallel = SweepRunner(jobs=2).run(specs)
        assert parallel.results == serial.results

        rows = collector.rows()
        by_id = {row["id"]: row for row in rows}
        sweeps = [row for row in rows if row["name"] == "sweep"]
        assert len(sweeps) == 1
        cells = [row for row in rows if row["name"] == "sweep_cell"]
        assert len(cells) == len(specs)
        for cell in cells:
            # Worker-recorded subtrees are adopted under the dispatching
            # sweep span: walking up from any cell must reach it.
            node = cell
            hops = 0
            while node["parent"] and hops < 100:
                node = by_id[node["parent"]]
                hops += 1
            assert node["id"] == sweeps[0]["id"]

    def test_sweep_span_absent_on_full_cache_hit(self, tmp_path):
        specs = self._specs()
        runner = SweepRunner(cache_dir=tmp_path, jobs=1)
        runner.run(specs)  # warm the cache untraced
        with trace.tracing() as collector:
            report = runner.run(specs)
        assert report.misses == 0
        assert [r for r in collector.rows() if r["name"] == "sweep"] == []
