"""Unit tests for the SVG/ASCII visualisation helpers and lifetime analysis."""

import math

import numpy as np
import pytest

from repro.analysis.lifetime import lifetime_report
from repro.geometry.bisector import perpendicular_bisector_halfplane
from repro.regions.shapes import figure8_region_one, unit_square
from repro.viz.ascii_art import ascii_deployment
from repro.viz.svg import PALETTE, SvgCanvas, render_deployment_svg, render_partition_svg


class TestSvgCanvas:
    def test_degenerate_bbox_rejected(self):
        with pytest.raises(ValueError):
            SvgCanvas((0.0, 0.0, 0.0, 1.0))
        with pytest.raises(ValueError):
            SvgCanvas((0.0, 0.0, 1.0, 1.0), width=10, margin=10)

    def test_world_to_pixel_corners(self):
        canvas = SvgCanvas((0.0, 0.0, 1.0, 1.0), width=116, margin=8)
        assert canvas.to_pixel((0.0, 1.0)) == pytest.approx((8.0, 8.0))
        assert canvas.to_pixel((1.0, 0.0)) == pytest.approx((108.0, 108.0))

    def test_scale_length(self):
        canvas = SvgCanvas((0.0, 0.0, 2.0, 2.0), width=216, margin=8)
        assert canvas.scale_length(1.0) == pytest.approx(100.0)

    def test_elements_serialised(self):
        canvas = SvgCanvas((0.0, 0.0, 1.0, 1.0), width=100, margin=5)
        canvas.add_polygon([(0, 0), (1, 0), (1, 1)], fill="#ff0000")
        canvas.add_circle((0.5, 0.5), 0.1)
        canvas.add_point((0.2, 0.2))
        canvas.add_text((0.1, 0.9), "k=2 & more")
        svg = canvas.to_svg()
        assert svg.startswith("<svg") and svg.endswith("</svg>")
        assert "<polygon" in svg and "<circle" in svg and "<text" in svg
        assert "&amp;" in svg  # text is escaped

    def test_degenerate_polygon_skipped(self):
        canvas = SvgCanvas((0.0, 0.0, 1.0, 1.0))
        canvas.add_polygon([(0, 0), (1, 1)])
        assert "<polygon" not in canvas.to_svg()

    def test_save(self, tmp_path):
        canvas = SvgCanvas((0.0, 0.0, 1.0, 1.0))
        out = canvas.save(tmp_path / "figs" / "canvas.svg")
        assert out.exists()
        assert out.read_text().startswith("<svg")


class TestRenderers:
    def test_deployment_svg_contains_nodes_and_disks(self, tmp_path):
        region = figure8_region_one()
        positions = [(0.2, 0.2), (0.8, 0.8)]
        svg = render_deployment_svg(
            region, positions, sensing_ranges=[0.3, 0.25],
            path=tmp_path / "deploy.svg", title="k=2 deployment",
        )
        assert svg.count("<circle") >= 4  # 2 disks + 2 node markers
        assert "k=2 deployment" in svg
        assert (tmp_path / "deploy.svg").exists()

    def test_deployment_svg_validates_lengths(self, square):
        with pytest.raises(ValueError):
            render_deployment_svg(square, [(0.5, 0.5)], sensing_ranges=[0.1, 0.2])

    def test_partition_svg(self, square):
        cells = [
            [[(0.0, 0.0), (0.5, 0.0), (0.5, 1.0), (0.0, 1.0)]],
            [[(0.5, 0.0), (1.0, 0.0), (1.0, 1.0), (0.5, 1.0)]],
        ]
        svg = render_partition_svg(square, cells, sites=[(0.25, 0.5), (0.75, 0.5)])
        assert svg.count("<polygon") >= 3  # region outline + 2 cells
        assert PALETTE[0] in svg and PALETTE[1] in svg


class TestAsciiDeployment:
    def test_dimensions_and_markers(self, square):
        art = ascii_deployment(square, [(0.5, 0.5)], width=20)
        lines = art.splitlines()
        assert lines[0].startswith("+") and lines[-1].startswith("+")
        assert all(len(line) == len(lines[0]) for line in lines)
        assert "o" in art

    def test_stacked_nodes_marked(self, square):
        art = ascii_deployment(square, [(0.5, 0.5), (0.5, 0.5)], width=20)
        assert "O" in art

    def test_obstacles_marked(self):
        region = figure8_region_one()
        art = ascii_deployment(region, [], width=40)
        assert "#" in art

    def test_width_validation(self, square):
        with pytest.raises(ValueError):
            ascii_deployment(square, [], width=2)


class TestLifetime:
    def test_balanced_deployment_ratio_one(self):
        report = lifetime_report([0.2, 0.2, 0.2], battery_capacity=1.0)
        assert report.lifetime_ratio_to_balanced == pytest.approx(1.0)
        assert report.first_death == pytest.approx(1.0 / (math.pi * 0.04))

    def test_unbalanced_deployment_penalised(self):
        balanced = lifetime_report([0.2, 0.2], battery_capacity=1.0)
        unbalanced = lifetime_report([0.1, math.sqrt(2 * 0.04 - 0.01)], battery_capacity=1.0)
        # Same total load but unbalanced -> earlier first death.
        assert unbalanced.first_death < balanced.first_death
        assert unbalanced.lifetime_ratio_to_balanced < 1.0

    def test_zero_load_nodes(self):
        report = lifetime_report([0.0, 0.0])
        assert report.first_death == math.inf
        report2 = lifetime_report([0.0, 0.2])
        assert math.isfinite(report2.first_death)

    def test_validation(self):
        with pytest.raises(ValueError):
            lifetime_report([0.1], battery_capacity=0.0)

    def test_laacad_deployment_nearly_balanced(self, square):
        from repro.core.config import LaacadConfig
        from repro.api import deploy

        positions = square.random_points(14, rng=np.random.default_rng(3))
        result = deploy(square, positions, LaacadConfig(k=2, epsilon=2e-3, max_rounds=60))
        report = lifetime_report(result.sensing_ranges)
        assert report.lifetime_ratio_to_balanced > 0.6


class TestBisectorHelper:
    def test_none_for_coincident_sites(self):
        assert perpendicular_bisector_halfplane((0.5, 0.5), (0.5, 0.5)) is None

    def test_halfplane_orientation(self):
        hp = perpendicular_bisector_halfplane((0.0, 0.0), (1.0, 0.0))
        assert hp is not None
        assert hp.contains((0.2, 0.7))
        assert not hp.contains((0.9, 0.7))
