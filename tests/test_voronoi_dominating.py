"""Unit tests for the k-order dominating-region engine (the heart of LAACAD)."""

import math

import numpy as np
import pytest

from repro.geometry.primitives import distance
from repro.regions.shapes import figure8_region_one, unit_square
from repro.voronoi.dominating import (
    DominatingRegion,
    compute_dominating_region,
    dominating_pieces,
)
from repro.voronoi.ordinary import voronoi_cell
from repro.voronoi.raster import RasterOracle


class TestDominatingPiecesBasics:
    def test_no_competitors_whole_area(self, square):
        pieces = dominating_pieces((0.5, 0.5), [], square.convex_pieces(), k=1)
        assert sum(_area(p) for p in pieces) == pytest.approx(1.0)

    def test_single_competitor_k1_splits_area(self, square):
        pieces = dominating_pieces((0.25, 0.5), [(0.75, 0.5)], square.convex_pieces(), k=1)
        assert sum(_area(p) for p in pieces) == pytest.approx(0.5)

    def test_single_competitor_k2_keeps_whole_area(self, square):
        pieces = dominating_pieces((0.25, 0.5), [(0.75, 0.5)], square.convex_pieces(), k=2)
        assert sum(_area(p) for p in pieces) == pytest.approx(1.0)

    def test_invalid_k_rejected(self, square):
        with pytest.raises(ValueError):
            dominating_pieces((0.5, 0.5), [], square.convex_pieces(), k=0)

    def test_colocated_competitor_has_no_effect(self, square):
        site = (0.3, 0.3)
        with_dup = dominating_pieces(site, [site, (0.8, 0.8)], square.convex_pieces(), k=1)
        without = dominating_pieces(site, [(0.8, 0.8)], square.convex_pieces(), k=1)
        assert sum(_area(p) for p in with_dup) == pytest.approx(
            sum(_area(p) for p in without)
        )

    def test_k_equal_to_node_count_covers_area(self, square, random_sites):
        site = random_sites[0]
        others = random_sites[1:]
        pieces = dominating_pieces(site, others, square.convex_pieces(), k=len(random_sites))
        assert sum(_area(p) for p in pieces) == pytest.approx(1.0)


class TestAgainstOrdinaryVoronoi:
    def test_k1_equals_ordinary_voronoi_cell(self, square, random_sites):
        for i in (0, 5, 11):
            site = random_sites[i]
            others = [s for j, s in enumerate(random_sites) if j != i]
            dom = compute_dominating_region(site, others, square, k=1)
            cell = voronoi_cell(site, others, square)
            assert dom.area == pytest.approx(sum(_area(p) for p in cell), rel=1e-6)

    def test_k1_cell_contains_site(self, square, random_sites):
        site = random_sites[3]
        others = [s for j, s in enumerate(random_sites) if j != 3]
        dom = compute_dominating_region(site, others, square, k=1)
        assert dom.contains(site)


class TestAgainstRasterOracle:
    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    def test_membership_agrees_with_oracle(self, square, k):
        rng = np.random.default_rng(100 + k)
        sites = square.random_points(15, rng=rng)
        oracle = RasterOracle(sites, square, resolution=35)
        for i in (0, 7, 14):
            dom = compute_dominating_region(
                sites[i], [s for j, s in enumerate(sites) if j != i], square, k
            )
            mask = oracle.dominating_mask(i, k)
            mismatches = 0
            for sample, inside in zip(oracle.samples, mask):
                if dom.contains(tuple(sample), eps=1e-7) != bool(inside):
                    # Allow disagreement only very near a bisector boundary.
                    own = distance(tuple(sample), sites[i])
                    margin = min(
                        abs(distance(tuple(sample), s) - own)
                        for j, s in enumerate(sites)
                        if j != i
                    )
                    if margin > 1e-6:
                        mismatches += 1
            assert mismatches == 0

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_total_dominating_area_is_k_times_region(self, square, k):
        rng = np.random.default_rng(200 + k)
        sites = square.random_points(12, rng=rng)
        total = 0.0
        for i, site in enumerate(sites):
            others = [s for j, s in enumerate(sites) if j != i]
            total += compute_dominating_region(site, others, square, k).area
        assert total == pytest.approx(k * square.area, rel=1e-4)


class TestPrefilter:
    def test_prefilter_matches_exhaustive(self, square):
        rng = np.random.default_rng(5)
        sites = square.random_points(30, rng=rng)
        for i in (0, 10, 20):
            others = [s for j, s in enumerate(sites) if j != i]
            fast = compute_dominating_region(sites[i], others, square, 2, prefilter=True)
            slow = compute_dominating_region(sites[i], others, square, 2, prefilter=False)
            assert fast.area == pytest.approx(slow.area, rel=1e-9)
            assert fast.circumradius() == pytest.approx(slow.circumradius(), rel=1e-9)

    def test_prefilter_uses_fewer_competitors(self, square):
        rng = np.random.default_rng(6)
        sites = square.random_points(60, rng=rng)
        others = [s for j, s in enumerate(sites) if j != 0]
        dom = compute_dominating_region(sites[0], others, square, 1, prefilter=True)
        assert dom.competitors_used < len(others)

    def test_initial_radius_respected(self, square):
        rng = np.random.default_rng(7)
        sites = square.random_points(25, rng=rng)
        others = [s for j, s in enumerate(sites) if j != 0]
        dom = compute_dominating_region(
            sites[0], others, square, 1, initial_radius=5.0
        )
        assert dom.search_radius >= 5.0


class TestRegionWithHoles:
    def test_dominating_region_avoids_hole(self):
        region = figure8_region_one()
        sites = [(0.2, 0.2), (0.8, 0.2), (0.8, 0.8), (0.2, 0.8)]
        dom = compute_dominating_region(sites[0], sites[1:], region, k=1)
        # The hole center is not dominated (it is not even in the region).
        assert not dom.contains((0.5, 0.5), eps=1e-9)
        assert dom.area < region.area

    def test_total_area_with_holes(self):
        region = figure8_region_one()
        rng = np.random.default_rng(9)
        sites = region.random_points(8, rng=rng)
        total = sum(
            compute_dominating_region(
                s, [t for j, t in enumerate(sites) if j != i], region, 2
            ).area
            for i, s in enumerate(sites)
        )
        assert total == pytest.approx(2 * region.area, rel=1e-4)


class TestDominatingRegionObject:
    def test_empty_region_properties(self):
        dom = DominatingRegion(site=(0.5, 0.5), k=1, pieces=[])
        assert dom.is_empty
        assert dom.area == 0.0
        assert dom.circumradius() == 0.0
        center, radius = dom.chebyshev_center()
        assert center == (0.5, 0.5)
        assert radius == 0.0

    def test_circumradius_from_other_point(self, square):
        dom = compute_dominating_region((0.5, 0.5), [], square, 1)
        # From the corner the farthest area point is the opposite corner.
        assert dom.circumradius((0.0, 0.0)) == pytest.approx(math.sqrt(2.0))

    def test_chebyshev_radius_not_larger_than_site_radius(self, square, random_sites):
        site = random_sites[0]
        others = random_sites[1:]
        dom = compute_dominating_region(site, others, square, 2)
        _, cheb_radius = dom.chebyshev_center()
        assert cheb_radius <= dom.circumradius(site) + 1e-9

    def test_max_distance_alias(self, square, random_sites):
        dom = compute_dominating_region(random_sites[0], random_sites[1:], square, 1)
        assert dom.max_distance_from_site() == pytest.approx(dom.circumradius())


def _area(polygon):
    from repro.geometry.polygon import polygon_area

    return polygon_area(polygon)
