"""Unit tests for the full k-order diagram, ordinary Voronoi cells and raster oracle."""

import numpy as np
import pytest

from repro.geometry.polygon import polygon_area
from repro.regions.shapes import unit_square
from repro.voronoi.korder import KOrderVoronoiDiagram
from repro.voronoi.ordinary import voronoi_cell, voronoi_partition
from repro.voronoi.raster import RasterOracle


@pytest.fixture(scope="module")
def sites():
    region = unit_square()
    rng = np.random.default_rng(77)
    return region.random_points(16, rng=rng)


class TestOrdinaryVoronoi:
    def test_cells_tile_region(self, sites):
        region = unit_square()
        cells = voronoi_partition(sites, region)
        total = sum(polygon_area(p) for pieces in cells for p in pieces)
        assert total == pytest.approx(region.area, rel=1e-6)

    def test_cell_contains_its_site(self, sites):
        region = unit_square()
        from repro.geometry.polygon import point_in_polygon

        others = sites[1:]
        pieces = voronoi_cell(sites[0], others, region)
        assert any(point_in_polygon(sites[0], p) for p in pieces)

    def test_single_site_gets_whole_region(self):
        region = unit_square()
        pieces = voronoi_cell((0.3, 0.3), [], region)
        assert sum(polygon_area(p) for p in pieces) == pytest.approx(1.0)


class TestKOrderDiagram:
    def test_invalid_parameters(self, sites):
        region = unit_square()
        with pytest.raises(ValueError):
            KOrderVoronoiDiagram(sites, region, 0)
        with pytest.raises(ValueError):
            KOrderVoronoiDiagram(sites[:2], region, 3)

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_cells_tile_region(self, sites, k):
        region = unit_square()
        diagram = KOrderVoronoiDiagram(sites, region, k, seed_resolution=60)
        assert diagram.total_cell_area() == pytest.approx(region.area, rel=0.02)

    def test_k1_cell_count_equals_site_count(self, sites):
        region = unit_square()
        diagram = KOrderVoronoiDiagram(sites, region, 1, seed_resolution=60)
        assert diagram.num_cells() == len(sites)

    def test_generator_sets_have_size_k(self, sites):
        region = unit_square()
        diagram = KOrderVoronoiDiagram(sites, region, 2, seed_resolution=40)
        assert all(len(gen) == 2 for gen in diagram.cells())

    def test_cell_count_bound_holds(self, sites):
        region = unit_square()
        for k in (1, 2, 3):
            diagram = KOrderVoronoiDiagram(sites, region, k, seed_resolution=50)
            assert diagram.num_cells() <= diagram.cell_count_bound() + len(sites)

    def test_dominating_region_matches_cell_union(self, sites):
        region = unit_square()
        diagram = KOrderVoronoiDiagram(sites, region, 2, seed_resolution=60)
        for i in (0, 5):
            from_cells = sum(polygon_area(p) for p in diagram.dominating_region_from_cells(i))
            exact = diagram.dominating_region(i).area
            assert from_cells == pytest.approx(exact, rel=0.03)

    def test_site_index_validation(self, sites):
        region = unit_square()
        diagram = KOrderVoronoiDiagram(sites, region, 2, seed_resolution=30)
        with pytest.raises(IndexError):
            diagram.dominating_region(len(sites))
        with pytest.raises(IndexError):
            diagram.dominating_region_from_cells(-1)


class TestRasterOracle:
    def test_requires_sites(self):
        with pytest.raises(ValueError):
            RasterOracle([], unit_square())

    def test_closer_counts_zero_for_single_site(self):
        oracle = RasterOracle([(0.5, 0.5)], unit_square(), resolution=10)
        assert np.all(oracle.closer_counts(0) == 0)

    def test_dominating_mask_k1_partition(self, sites):
        oracle = RasterOracle(sites, unit_square(), resolution=30)
        masks = np.stack([oracle.dominating_mask(i, 1) for i in range(len(sites))])
        # For k = 1 every sample belongs to exactly one dominating region
        # (ties are measure-zero on a generic grid).
        assert np.all(masks.sum(axis=0) == 1)

    def test_dominating_mask_k_partition_multiplicity(self, sites):
        oracle = RasterOracle(sites, unit_square(), resolution=30)
        k = 3
        masks = np.stack([oracle.dominating_mask(i, k) for i in range(len(sites))])
        assert np.all(masks.sum(axis=0) == k)

    def test_kth_nearest_distance_monotone_in_k(self, sites):
        oracle = RasterOracle(sites, unit_square(), resolution=20)
        d1 = oracle.kth_nearest_distance(1)
        d3 = oracle.kth_nearest_distance(3)
        assert np.all(d3 >= d1)

    def test_kth_nearest_validation(self, sites):
        oracle = RasterOracle(sites, unit_square(), resolution=10)
        with pytest.raises(ValueError):
            oracle.kth_nearest_distance(0)
        with pytest.raises(ValueError):
            oracle.kth_nearest_distance(len(sites) + 1)

    def test_coverage_counts_and_k_covered(self, sites):
        oracle = RasterOracle(sites, unit_square(), resolution=25)
        # Every sample is k-covered when ranges equal the k-th nearest distance.
        k = 2
        needed = float(oracle.kth_nearest_distance(k).max())
        ranges = [needed] * len(sites)
        assert oracle.is_k_covered(ranges, k)
        assert not oracle.is_k_covered([needed * 0.3] * len(sites), k)

    def test_coverage_counts_validation(self, sites):
        oracle = RasterOracle(sites, unit_square(), resolution=10)
        with pytest.raises(ValueError):
            oracle.coverage_counts([0.1] * (len(sites) - 1))

    def test_dominating_area_positive(self, sites):
        oracle = RasterOracle(sites, unit_square(), resolution=30)
        assert oracle.dominating_area(0, 2) > 0.0

    def test_k_nearest_sets_size(self, sites):
        oracle = RasterOracle(sites, unit_square(), resolution=15)
        sets = oracle.k_nearest_sets(3)
        assert all(len(s) == 3 for s in sets)

    def test_index_validation(self, sites):
        oracle = RasterOracle(sites, unit_square(), resolution=10)
        with pytest.raises(IndexError):
            oracle.closer_counts(len(sites))
        with pytest.raises(ValueError):
            oracle.dominating_mask(0, 0)
